"""On-chip (OCI) and chip-to-chip (ICI) interconnect models.

The OCI carries traffic between CMEM and the TensorCore-local VMEM; the two
ICI links connect TPUs into a ring for multi-device inference.  Both are
modelled as bandwidth pipes with a fixed latency, sufficient for the
tile-granular transfers the mapping engine schedules.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OCIConfig:
    """On-chip interconnect between CMEM and VMEM."""

    bandwidth_bytes_per_cycle: float = 2048.0
    latency_cycles: int = 24

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency must be non-negative")


class OnChipInterconnect:
    """Bandwidth model of the CMEM↔VMEM on-chip interconnect."""

    def __init__(self, config: OCIConfig | None = None) -> None:
        self.config = config if config is not None else OCIConfig()

    def transfer_cycles(self, num_bytes: float) -> float:
        """Cycles to move ``num_bytes`` between CMEM and VMEM."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return num_bytes / self.config.bandwidth_bytes_per_cycle + self.config.latency_cycles


@dataclass(frozen=True)
class ICILink:
    """One chip-to-chip interconnect link (TPUv4i has two per chip)."""

    bandwidth_gbps: float = 100.0
    frequency_ghz: float = 1.05
    latency_us: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0 or self.frequency_ghz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")

    @property
    def bytes_per_cycle(self) -> float:
        """Link bandwidth in bytes per core clock cycle."""
        return self.bandwidth_gbps * 1e9 / (self.frequency_ghz * 1e9)

    @property
    def latency_cycles(self) -> float:
        """Link latency in core clock cycles."""
        return self.latency_us * 1e-6 * self.frequency_ghz * 1e9

    def transfer_cycles(self, num_bytes: float) -> float:
        """Cycles to push ``num_bytes`` across this link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return num_bytes / self.bytes_per_cycle + self.latency_cycles


@dataclass(frozen=True)
class RingTopology:
    """A ring of TPUs connected through their two ICI links.

    The paper's multi-device evaluation interconnects up to four TPUs in a
    ring (the TPUv4i default), using pipeline parallelism between stages and
    optionally tensor parallelism within a stage.
    """

    num_devices: int
    link: ICILink = ICILink()

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError("a ring needs at least one device")

    def point_to_point_cycles(self, num_bytes: float) -> float:
        """Cycles to send a message to the ring neighbour (one hop)."""
        if self.num_devices == 1:
            return 0.0
        return self.link.transfer_cycles(num_bytes)

    def all_reduce_cycles(self, num_bytes: float) -> float:
        """Cycles for a ring all-reduce of ``num_bytes`` per device.

        The standard ring algorithm moves ``2·(n−1)/n`` of the payload across
        each link, in ``2·(n−1)`` latency-bound steps.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        n = self.num_devices
        if n == 1 or num_bytes == 0:
            return 0.0
        steps = 2 * (n - 1)
        chunk = num_bytes / n
        per_step = chunk / self.link.bytes_per_cycle + self.link.latency_cycles
        return steps * per_step

    def all_gather_cycles(self, num_bytes: float) -> float:
        """Cycles for a ring all-gather of ``num_bytes`` per device."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        n = self.num_devices
        if n == 1 or num_bytes == 0:
            return 0.0
        steps = n - 1
        chunk = num_bytes / n
        per_step = chunk / self.link.bytes_per_cycle + self.link.latency_cycles
        return steps * per_step
