"""On-chip SRAM buffer model (VMEM and CMEM).

Both on-chip memories are modelled as banked SRAMs with a capacity, a read
bandwidth and a write bandwidth expressed in bytes per core clock cycle.  The
buffer also offers a simple allocation interface so the mapping engine can
verify that a candidate tiling (with or without double buffering) actually
fits before it is scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass



@dataclass(frozen=True)
class SRAMConfig:
    """Static parameters of one on-chip SRAM buffer."""

    name: str
    capacity_bytes: int
    read_bytes_per_cycle: float
    write_bytes_per_cycle: float
    banks: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SRAM buffer needs a non-empty name")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.read_bytes_per_cycle <= 0 or self.write_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if self.banks <= 0:
            raise ValueError("bank count must be positive")


class SRAMBuffer:
    """A capacity- and bandwidth-constrained on-chip buffer."""

    def __init__(self, config: SRAMConfig) -> None:
        self.config = config
        self._allocations: dict[str, int] = {}

    # ---------------------------------------------------------------- timing
    def read_cycles(self, num_bytes: float) -> float:
        """Cycles needed to read ``num_bytes`` from the buffer."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.config.read_bytes_per_cycle

    def write_cycles(self, num_bytes: float) -> float:
        """Cycles needed to write ``num_bytes`` into the buffer."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.config.write_bytes_per_cycle

    # ------------------------------------------------------------ allocation
    @property
    def allocated_bytes(self) -> int:
        """Bytes currently reserved by named allocations."""
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available for allocation."""
        return self.config.capacity_bytes - self.allocated_bytes

    def fits(self, num_bytes: int) -> bool:
        """Whether an additional allocation of ``num_bytes`` would fit."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes <= self.free_bytes

    def allocate(self, name: str, num_bytes: int) -> None:
        """Reserve ``num_bytes`` under ``name``; raises if it does not fit."""
        if name in self._allocations:
            raise ValueError(f"allocation '{name}' already exists in {self.config.name}")
        if not self.fits(num_bytes):
            raise MemoryError(
                f"{self.config.name}: cannot allocate {num_bytes} bytes for '{name}' "
                f"({self.free_bytes} bytes free of {self.config.capacity_bytes})")
        self._allocations[name] = num_bytes

    def release(self, name: str) -> None:
        """Release a named allocation."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named '{name}' in {self.config.name}")
        del self._allocations[name]

    def reset(self) -> None:
        """Drop every allocation (used between simulated operators)."""
        self._allocations.clear()


def vmem_default() -> SRAMConfig:
    """The TPUv4i 16 MB vector memory, wide enough to feed four MXUs."""
    return SRAMConfig(name="VMEM", capacity_bytes=16 * 2**20,
                      read_bytes_per_cycle=4096.0, write_bytes_per_cycle=4096.0, banks=128)


def cmem_default() -> SRAMConfig:
    """The TPUv4i 128 MB common memory."""
    return SRAMConfig(name="CMEM", capacity_bytes=128 * 2**20,
                      read_bytes_per_cycle=2048.0, write_bytes_per_cycle=2048.0, banks=64)
