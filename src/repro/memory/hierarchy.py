"""Two-level memory hierarchy with double buffering and coalescing.

The hierarchy mirrors the TPUv4i (and the paper's CIM-based TPU, which keeps
it unchanged): HBM → CMEM → VMEM → compute units.  The mapping engine asks
this model two questions for every scheduled tile:

* how many cycles does it take to stage the tile's operands (and drain its
  results) at each level, and
* what is the resulting energy.

Double buffering at a level lets the *next* tile's transfers overlap the
current tile's computation, so the steady-state latency of a tile becomes
``max(compute, transfer)`` instead of their sum.  Memory coalescing chooses
the long-burst HBM efficiency point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.energy import EnergyBudget, EnergyModel
from repro.memory.dram import MainMemory, MainMemoryConfig
from repro.memory.interconnect import OCIConfig, OnChipInterconnect
from repro.memory.sram import SRAMBuffer, SRAMConfig, cmem_default, vmem_default


@dataclass(frozen=True)
class TransferRequest:
    """A data movement request between two adjacent levels of the hierarchy."""

    num_bytes: float
    source: str
    destination: str
    coalesced: bool = True

    _LEVELS = ("hbm", "cmem", "vmem", "compute")

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if self.source not in self._LEVELS or self.destination not in self._LEVELS:
            raise ValueError(
                f"source/destination must be one of {self._LEVELS}, "
                f"got {self.source!r} → {self.destination!r}")
        if self.source == self.destination:
            raise ValueError("source and destination must differ")


@dataclass(frozen=True)
class TransferResult:
    """Cycles and energy of one hierarchy transfer."""

    cycles: float
    energy: EnergyBudget


class MemoryHierarchy:
    """HBM → CMEM → VMEM hierarchy shared by all TPU variants in the model."""

    def __init__(self,
                 vmem: SRAMConfig | None = None,
                 cmem: SRAMConfig | None = None,
                 main_memory: MainMemoryConfig | None = None,
                 oci: OCIConfig | None = None,
                 energy_model: EnergyModel | None = None) -> None:
        self.vmem = SRAMBuffer(vmem if vmem is not None else vmem_default())
        self.cmem = SRAMBuffer(cmem if cmem is not None else cmem_default())
        self.main_memory = MainMemory(main_memory)
        self.oci = OnChipInterconnect(oci)
        self.energy_model = energy_model if energy_model is not None else EnergyModel()

    # ---------------------------------------------------------------- timing
    def transfer(self, request: TransferRequest) -> TransferResult:
        """Evaluate one transfer between adjacent (or bridged) levels."""
        cycles = 0.0
        energy = EnergyBudget()
        path = self._path(request.source, request.destination)
        for src, dst in zip(path[:-1], path[1:]):
            hop_cycles, hop_energy = self._hop(request.num_bytes, src, dst, request.coalesced)
            # Hops are pipelined: a long transfer streams through intermediate
            # buffers, so the slowest hop dominates rather than the sum.
            cycles = max(cycles, hop_cycles)
            energy.merge(hop_energy)
        return TransferResult(cycles=cycles, energy=energy)

    def hbm_to_cmem(self, num_bytes: float, coalesced: bool = True) -> TransferResult:
        """Stage data from HBM into CMEM."""
        return self.transfer(TransferRequest(num_bytes, "hbm", "cmem", coalesced))

    def cmem_to_vmem(self, num_bytes: float) -> TransferResult:
        """Stage data from CMEM into VMEM over the OCI."""
        return self.transfer(TransferRequest(num_bytes, "cmem", "vmem"))

    def hbm_to_vmem(self, num_bytes: float, coalesced: bool = True) -> TransferResult:
        """Stream data from HBM through CMEM into VMEM."""
        return self.transfer(TransferRequest(num_bytes, "hbm", "vmem", coalesced))

    def vmem_to_cmem(self, num_bytes: float) -> TransferResult:
        """Drain results from VMEM back into CMEM."""
        return self.transfer(TransferRequest(num_bytes, "vmem", "cmem"))

    def _path(self, source: str, destination: str) -> list[str]:
        order = ["hbm", "cmem", "vmem", "compute"]
        i, j = order.index(source), order.index(destination)
        if i < j:
            return order[i:j + 1]
        return list(reversed(order[j:i + 1]))

    def _hop(self, num_bytes: float, src: str, dst: str,
             coalesced: bool) -> tuple[float, EnergyBudget]:
        energy = EnergyBudget()
        pair = frozenset((src, dst))
        if pair == frozenset(("hbm", "cmem")):
            cycles = self.main_memory.transfer_cycles(num_bytes, coalesced)
            energy.add_dynamic("hbm", self.energy_model.hbm_access_energy(num_bytes))
            energy.add_dynamic("cmem", self.energy_model.cmem_access_energy(num_bytes))
        elif pair == frozenset(("cmem", "vmem")):
            cycles = max(self.oci.transfer_cycles(num_bytes),
                         self.cmem.read_cycles(num_bytes),
                         self.vmem.write_cycles(num_bytes))
            energy.add_dynamic("cmem", self.energy_model.cmem_access_energy(num_bytes))
            energy.add_dynamic("vmem", self.energy_model.vmem_access_energy(num_bytes))
        elif pair == frozenset(("vmem", "compute")):
            cycles = self.vmem.read_cycles(num_bytes)
            energy.add_dynamic("vmem", self.energy_model.vmem_access_energy(num_bytes))
        else:
            raise ValueError(f"no direct hop between {src} and {dst}")
        return cycles, energy

    # ----------------------------------------------------------- scheduling
    @staticmethod
    def overlapped_latency(compute_cycles: float, transfer_cycles: float,
                           double_buffered: bool = True) -> float:
        """Steady-state latency of a tile given its compute and transfer time.

        With double buffering the transfers of tile ``i+1`` happen during the
        computation of tile ``i``; without it, the two serialise.
        """
        if compute_cycles < 0 or transfer_cycles < 0:
            raise ValueError("cycle counts must be non-negative")
        if double_buffered:
            return max(compute_cycles, transfer_cycles)
        return compute_cycles + transfer_cycles

    def double_buffer_fits(self, buffer: SRAMBuffer, tile_bytes: int) -> bool:
        """Whether a tile can be double buffered in the given SRAM."""
        if tile_bytes < 0:
            raise ValueError("tile_bytes must be non-negative")
        return 2 * tile_bytes <= buffer.config.capacity_bytes
