"""Multi-device parallelism: tensor and pipeline parallelism over ICI rings.

The paper scales its evaluation to up to four TPUs interconnected in a ring
through the two per-chip ICI links, using pipeline parallelism (and tensor
parallelism within a layer where beneficial) to accommodate large batch sizes
and model footprints.  This package models both schemes on top of the
single-chip simulator.
"""

from repro.parallel.tensor_parallel import TensorParallelPlan, shard_layer_config
from repro.parallel.pipeline_parallel import PipelineParallelPlan, PipelineSchedule
from repro.parallel.multi_device import MultiTPUSystem, MultiDeviceResult

__all__ = [
    "TensorParallelPlan",
    "shard_layer_config",
    "PipelineParallelPlan",
    "PipelineSchedule",
    "MultiTPUSystem",
    "MultiDeviceResult",
]
