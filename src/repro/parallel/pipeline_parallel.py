"""Pipeline parallelism across TPUs connected in a ring.

Layers are divided into contiguous stages, one stage per device; activations
flow between neighbouring devices over an ICI hop.  Micro-batching (GPipe
style) keeps all stages busy: with ``m`` micro-batches and ``s`` stages the
pipeline completes in ``(m + s − 1)`` stage-times instead of ``m·s``, the
familiar "bubble" formula the model uses for prefill and for DiT steps.  For
autoregressive decoding the sequential token dependency means a single
micro-batch traverses the whole pipeline per token, but independent
micro-batches of the batch overlap, which is what sustains throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ceil_div
from repro.memory.interconnect import RingTopology


@dataclass(frozen=True)
class PipelineParallelPlan:
    """Static description of a pipeline-parallel execution."""

    num_stages: int
    num_layers: int
    micro_batches: int
    topology: RingTopology

    def __post_init__(self) -> None:
        if self.num_stages <= 0 or self.num_layers <= 0 or self.micro_batches <= 0:
            raise ValueError("stages, layers and micro_batches must be positive")
        if self.num_stages > self.topology.num_devices:
            raise ValueError("cannot have more pipeline stages than devices")
        if self.num_stages > self.num_layers:
            raise ValueError("cannot have more pipeline stages than layers")

    @property
    def layers_per_stage(self) -> int:
        """Layers assigned to the most loaded stage."""
        return ceil_div(self.num_layers, self.num_stages)

    @property
    def bubble_fraction(self) -> float:
        """Fraction of pipeline time lost to fill/drain bubbles."""
        return (self.num_stages - 1) / (self.micro_batches + self.num_stages - 1)


@dataclass(frozen=True)
class PipelineSchedule:
    """Evaluated pipeline timings for one phase (prefill, decode or DiT step)."""

    plan: PipelineParallelPlan
    stage_seconds: float
    hop_seconds: float

    def __post_init__(self) -> None:
        if self.stage_seconds < 0 or self.hop_seconds < 0:
            raise ValueError("stage and hop times must be non-negative")

    @property
    def stage_with_hop_seconds(self) -> float:
        """Per-stage time including the ICI hop to the next stage."""
        return self.stage_seconds + self.hop_seconds

    def batch_latency(self) -> float:
        """Latency for all micro-batches to flow through the pipeline once."""
        plan = self.plan
        return (plan.micro_batches + plan.num_stages - 1) * self.stage_with_hop_seconds

    def steady_state_interval(self) -> float:
        """Time between successive micro-batch completions at steady state."""
        return self.stage_with_hop_seconds

    def sequential_traversal_latency(self) -> float:
        """Latency of one micro-batch traversing every stage (decode step)."""
        return self.plan.num_stages * self.stage_with_hop_seconds

    def decode_step_interval(self) -> float:
        """Average time per decode step for the whole batch.

        A decode step for one micro-batch must traverse all stages, but up to
        ``min(micro_batches, num_stages)`` micro-batches are in flight at
        once, so the batch-level step interval is the traversal latency
        divided by that overlap factor.
        """
        plan = self.plan
        overlap = min(plan.micro_batches, plan.num_stages)
        return self.sequential_traversal_latency() / overlap


def build_pipeline_plan(num_devices: int, num_layers: int, batch: int,
                        topology: RingTopology,
                        micro_batch_size: int = 1) -> PipelineParallelPlan:
    """Construct a pipeline plan that splits the batch into micro-batches."""
    if num_devices <= 0 or batch <= 0 or micro_batch_size <= 0:
        raise ValueError("num_devices, batch and micro_batch_size must be positive")
    stages = min(num_devices, num_layers)
    micro_batches = max(1, ceil_div(batch, micro_batch_size))
    return PipelineParallelPlan(num_stages=stages, num_layers=num_layers,
                                micro_batches=micro_batches, topology=topology)
