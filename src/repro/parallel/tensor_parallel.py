"""Megatron-style tensor parallelism for Transformer layers.

Tensor parallelism shards each layer across devices: attention heads and the
FFN inner dimension are divided, so the QKV/FFN1 matmuls are column-split and
the projection/FFN2 matmuls are row-split.  Two all-reduces of the activation
tensor per layer (one after attention, one after the FFN) stitch the shards
back together — that communication volume, not the compute, is what limits
tensor-parallel scaling over the 100 GB/s ICI links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import Precision
from repro.memory.interconnect import RingTopology
from repro.workloads.transformer import TransformerLayerConfig


def shard_layer_config(config: TransformerLayerConfig, degree: int) -> TransformerLayerConfig:
    """The per-device layer shape under tensor parallelism of the given degree.

    Heads and the FFN inner dimension are divided by ``degree``; the hidden
    dimension (and therefore the LayerNorms and residuals) stays replicated.
    """
    if degree <= 0:
        raise ValueError("tensor-parallel degree must be positive")
    if degree == 1:
        return config
    if config.num_heads % degree != 0:
        raise ValueError(
            f"cannot shard {config.num_heads} heads over {degree} devices evenly")
    if config.d_ff % degree != 0:
        raise ValueError(
            f"cannot shard FFN dimension {config.d_ff} over {degree} devices evenly")
    return TransformerLayerConfig(
        d_model=config.d_model,
        num_heads=config.num_heads // degree,
        d_ff=config.d_ff // degree,
        head_dim=config.resolved_head_dim,
        gated_ffn=config.gated_ffn,
    )


@dataclass(frozen=True)
class TensorParallelPlan:
    """Tensor-parallel execution plan for one Transformer layer."""

    degree: int
    topology: RingTopology

    def __post_init__(self) -> None:
        if self.degree <= 0:
            raise ValueError("degree must be positive")
        if self.degree > self.topology.num_devices:
            raise ValueError("tensor-parallel degree cannot exceed the device count")

    def allreduce_bytes_per_layer(self, tokens: int, d_model: int,
                                  precision: Precision = Precision.INT8) -> int:
        """Bytes all-reduced per layer (two all-reduces of the activations)."""
        if tokens <= 0 or d_model <= 0:
            raise ValueError("tokens and d_model must be positive")
        return 2 * tokens * d_model * precision.bytes

    def communication_cycles_per_layer(self, tokens: int, d_model: int,
                                       precision: Precision = Precision.INT8) -> float:
        """ICI cycles spent in all-reduces for one layer."""
        if self.degree == 1:
            return 0.0
        payload = self.allreduce_bytes_per_layer(tokens, d_model, precision) // 2
        ring = RingTopology(num_devices=self.degree, link=self.topology.link)
        return 2 * ring.all_reduce_cycles(payload)
