"""Multi-TPU inference simulation (Fig. 8 of the paper).

Up to four TPUs are connected in a ring over their ICI links and run the
generative model with pipeline parallelism: each device owns a contiguous
slice of the layer stack and forwards activations to its ring neighbour.  As
in production serving, enough independent request groups are assumed to be in
flight to keep every pipeline stage busy, so steady-state throughput is set by
the bottleneck stage:  the layers it owns plus the ICI hop.  MXU energy is
accumulated over all devices, which is how the paper reports the 24.2× /
6.34× multi-device energy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import ceil_div
from repro.core.config import TPUConfig
from repro.core.results import GraphResult
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.memory.interconnect import ICILink, RingTopology
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig


@dataclass(frozen=True)
class MultiDeviceResult:
    """Steady-state throughput and energy of a multi-TPU deployment."""

    model_name: str
    tpu_name: str
    num_devices: int
    #: Seconds the bottleneck pipeline stage spends on one request group
    #: (prefill plus the full decode phase, or the full DiT sampling loop).
    stage_occupancy_seconds: float
    #: ICI communication seconds per request group at the bottleneck stage.
    communication_seconds: float
    #: Items (generated tokens or images) produced per request group.
    items_per_group: float
    item_unit: str
    #: MXU energy per request group summed over every device.
    mxu_energy_joules: float
    #: Total chip energy per request group summed over every device.
    total_energy_joules: float

    @property
    def throughput(self) -> float:
        """Items per second at steady state."""
        total = self.stage_occupancy_seconds + self.communication_seconds
        return self.items_per_group / total if total > 0 else 0.0

    @property
    def energy_per_item(self) -> float:
        """MXU energy per generated item."""
        return self.mxu_energy_joules / self.items_per_group if self.items_per_group else 0.0


@dataclass
class MultiTPUSystem:
    """A ring of identical TPUs running one generative model.

    ``parallelism`` selects how the model is spread over the ring:

    * ``"pipeline"`` (default, the paper's Fig. 8 configuration) — contiguous
      layer slices per device, activations hop between neighbours.
    * ``"tensor"`` — every device holds a Megatron-style shard of every layer
      (heads and FFN inner dimension divided), with two all-reduces of the
      activations per layer.  Only supported for LLM workloads.
    """

    tpu_config: TPUConfig
    num_devices: int
    link: ICILink = field(default_factory=ICILink)
    parallelism: str = "pipeline"
    #: Optional externally owned simulator (e.g. the sweep engine's caching
    #: simulator, so per-layer graphs are shared across device counts).  Must
    #: be configured with the same ``tpu_config`` as the system.
    simulator: InferenceSimulator | None = None

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if self.parallelism not in ("pipeline", "tensor"):
            raise ValueError(f"unknown parallelism '{self.parallelism}' "
                             "(expected 'pipeline' or 'tensor')")
        if self.simulator is not None and self.simulator.tpu_config != self.tpu_config:
            raise ValueError("injected simulator is configured for "
                             f"'{self.simulator.tpu_config.name}', not "
                             f"'{self.tpu_config.name}'")
        self.topology = RingTopology(num_devices=self.num_devices, link=self.link)
        self._simulator = (self.simulator if self.simulator is not None
                           else InferenceSimulator(self.tpu_config))

    # ------------------------------------------------------------------ LLM
    def simulate_llm(self, llm: LLMConfig,
                     settings: LLMInferenceSettings | None = None) -> MultiDeviceResult:
        """Steady-state LLM serving throughput on the ring."""
        settings = settings if settings is not None else LLMInferenceSettings()
        if self.parallelism == "tensor" and self.num_devices > 1:
            return self._simulate_llm_tensor_parallel(llm, settings)
        layers_per_stage = ceil_div(llm.num_layers, self.num_devices)

        prefill = self._simulator.simulate_llm_prefill_layer(llm, settings)
        decode_layers = [self._simulator.simulate_llm_decode_layer(llm, settings, kv_len=kv)
                         for kv in settings.decode_kv_lengths()]
        decode_layer_seconds = sum(g.total_seconds for g in decode_layers) / len(decode_layers)
        decode_layer_mxu_energy = sum(g.mxu_energy for g in decode_layers) / len(decode_layers)
        decode_layer_total_energy = (sum(g.total_energy.total for g in decode_layers)
                                     / len(decode_layers))

        stage_seconds = layers_per_stage * (
            prefill.total_seconds + settings.output_tokens * decode_layer_seconds)

        # One activation hop per stage boundary, for the prompt once and for
        # every generated token.
        hop_bytes_prefill = settings.batch * settings.input_tokens * llm.d_model * settings.precision.bytes
        hop_bytes_decode = settings.batch * llm.d_model * settings.precision.bytes
        hops = 0.0
        if self.num_devices > 1:
            hops = self._hop_seconds(hop_bytes_prefill) + settings.output_tokens * self._hop_seconds(hop_bytes_decode)

        mxu_energy = llm.num_layers * (
            prefill.mxu_energy + settings.output_tokens * decode_layer_mxu_energy)
        total_energy = llm.num_layers * (
            prefill.total_energy.total + settings.output_tokens * decode_layer_total_energy)

        return MultiDeviceResult(
            model_name=llm.name,
            tpu_name=self.tpu_config.name,
            num_devices=self.num_devices,
            stage_occupancy_seconds=stage_seconds,
            communication_seconds=hops,
            items_per_group=float(settings.batch * settings.output_tokens),
            item_unit="token",
            mxu_energy_joules=mxu_energy,
            total_energy_joules=total_energy,
        )

    def _simulate_llm_tensor_parallel(self, llm: LLMConfig,
                                      settings: LLMInferenceSettings) -> MultiDeviceResult:
        """Tensor-parallel LLM serving: every layer sharded across the ring."""
        degree = self.num_devices
        if llm.num_heads % degree != 0 or llm.d_ff % degree != 0:
            raise ValueError(
                f"cannot shard {llm.name} (heads={llm.num_heads}, d_ff={llm.d_ff}) "
                f"over {degree} devices evenly")
        shard = LLMConfig(
            name=f"{llm.name}-tp{degree}", num_layers=llm.num_layers,
            num_heads=llm.num_heads // degree, d_model=llm.d_model,
            d_ff=llm.d_ff // degree, vocab_size=llm.vocab_size, gated_ffn=llm.gated_ffn,
            head_dim=llm.layer_config().resolved_head_dim)

        prefill = self._simulator.simulate_llm_prefill_layer(shard, settings)
        decode_layers = [self._simulator.simulate_llm_decode_layer(shard, settings, kv_len=kv)
                         for kv in settings.decode_kv_lengths()]
        decode_seconds = sum(g.total_seconds for g in decode_layers) / len(decode_layers)
        decode_mxu_energy = sum(g.mxu_energy for g in decode_layers) / len(decode_layers)
        decode_total_energy = (sum(g.total_energy.total for g in decode_layers)
                               / len(decode_layers))

        # Two all-reduces of the activations per layer (after attention and
        # after the FFN), for the prompt once and for every generated token.
        prefill_tokens = settings.batch * settings.input_tokens
        decode_tokens = settings.batch
        prefill_comm = 2 * self._all_reduce_seconds(
            prefill_tokens * llm.d_model * settings.precision.bytes)
        decode_comm = 2 * self._all_reduce_seconds(
            decode_tokens * llm.d_model * settings.precision.bytes)

        occupancy = llm.num_layers * (
            prefill.total_seconds + settings.output_tokens * decode_seconds)
        communication = llm.num_layers * (
            prefill_comm + settings.output_tokens * decode_comm)
        mxu_energy = degree * llm.num_layers * (
            prefill.mxu_energy + settings.output_tokens * decode_mxu_energy)
        total_energy = degree * llm.num_layers * (
            prefill.total_energy.total + settings.output_tokens * decode_total_energy)

        return MultiDeviceResult(
            model_name=llm.name,
            tpu_name=self.tpu_config.name,
            num_devices=self.num_devices,
            stage_occupancy_seconds=occupancy,
            communication_seconds=communication,
            items_per_group=float(settings.batch * settings.output_tokens),
            item_unit="token",
            mxu_energy_joules=mxu_energy,
            total_energy_joules=total_energy,
        )

    # ------------------------------------------------------------------ DiT
    def simulate_dit(self, dit: DiTConfig,
                     settings: DiTInferenceSettings | None = None) -> MultiDeviceResult:
        """Steady-state DiT sampling throughput on the ring."""
        settings = settings if settings is not None else DiTInferenceSettings()
        if self.parallelism == "tensor" and self.num_devices > 1:
            raise ValueError("tensor parallelism is only modelled for LLM workloads; "
                             "use parallelism='pipeline' for DiT")
        blocks_per_stage = ceil_div(dit.depth, self.num_devices)

        block = self._simulator.simulate_dit_block(dit, settings)
        stage_seconds = settings.sampling_steps * blocks_per_stage * block.total_seconds

        tokens = dit.tokens_for_resolution(settings.image_resolution)
        hop_bytes = settings.batch * tokens * dit.d_model * settings.precision.bytes
        hops = 0.0
        if self.num_devices > 1:
            hops = settings.sampling_steps * self._hop_seconds(hop_bytes)

        mxu_energy = settings.sampling_steps * dit.depth * block.mxu_energy
        total_energy = settings.sampling_steps * dit.depth * block.total_energy.total

        return MultiDeviceResult(
            model_name=dit.name,
            tpu_name=self.tpu_config.name,
            num_devices=self.num_devices,
            stage_occupancy_seconds=stage_seconds,
            communication_seconds=hops,
            items_per_group=float(settings.batch),
            item_unit="image",
            mxu_energy_joules=mxu_energy,
            total_energy_joules=total_energy,
        )

    # ------------------------------------------------------------ internals
    def _hop_seconds(self, num_bytes: float) -> float:
        cycles = self.topology.point_to_point_cycles(num_bytes)
        return cycles / (self.link.frequency_ghz * 1e9)

    def _all_reduce_seconds(self, num_bytes: float) -> float:
        cycles = self.topology.all_reduce_cycles(num_bytes)
        return cycles / (self.link.frequency_ghz * 1e9)

    def per_layer_results(self, graph_result: GraphResult) -> GraphResult:
        """Expose the underlying per-layer result (for tests and reports)."""
        return graph_result
