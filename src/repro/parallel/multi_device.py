"""Multi-TPU inference simulation (Fig. 8 of the paper).

Up to four TPUs are connected in a ring over their ICI links and run the
generative model with pipeline parallelism: each device owns a contiguous
slice of the layer stack and forwards activations to its ring neighbour.  As
in production serving, enough independent request groups are assumed to be in
flight to keep every pipeline stage busy, so steady-state throughput is set by
the bottleneck stage:  the layers it owns plus the ICI hop.  MXU energy is
accumulated over all devices, which is how the paper reports the 24.2× /
6.34× multi-device energy reductions.

The deployment model is scenario-generic: any
:class:`~repro.workloads.scenario.Scenario` carries the pipeline-sliceable
unit count and per-group activation hops the ring model needs, so
:meth:`MultiTPUSystem.simulate_scenario` serves every registered workload —
LLM serving, DiT sampling, MoE, chat mixes — through one code path.  Tensor
parallelism uses the scenario spec's
:class:`~repro.workloads.scenario.TensorParallelSpec` (sharded model +
all-reduce volumes); scenarios without one reject the combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common import ceil_div
from repro.core.config import TPUConfig
from repro.core.results import GraphResult
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.memory.interconnect import ICILink, RingTopology
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig
from repro.workloads.scenario import Scenario, ScenarioSpec


@dataclass(frozen=True)
class MultiDeviceResult:
    """Steady-state throughput and energy of a multi-TPU deployment."""

    model_name: str
    tpu_name: str
    num_devices: int
    #: Seconds the bottleneck pipeline stage spends on one request group
    #: (prefill plus the full decode phase, or the full DiT sampling loop).
    stage_occupancy_seconds: float
    #: ICI communication seconds per request group at the bottleneck stage.
    communication_seconds: float
    #: Items (generated tokens or images) produced per request group.
    items_per_group: float
    item_unit: str
    #: MXU energy per request group summed over every device.
    mxu_energy_joules: float
    #: Total chip energy per request group summed over every device.
    total_energy_joules: float

    @property
    def throughput(self) -> float:
        """Items per second at steady state."""
        total = self.stage_occupancy_seconds + self.communication_seconds
        return self.items_per_group / total if total > 0 else 0.0

    @property
    def energy_per_item(self) -> float:
        """MXU energy per generated item."""
        return self.mxu_energy_joules / self.items_per_group if self.items_per_group else 0.0


@dataclass
class MultiTPUSystem:
    """A ring of identical TPUs running one generative model.

    ``parallelism`` selects how the model is spread over the ring:

    * ``"pipeline"`` (default, the paper's Fig. 8 configuration) — contiguous
      slices of the scenario's pipeline units per device, activations hop
      between neighbours.
    * ``"tensor"`` — every device holds a Megatron-style shard of every layer
      (heads and FFN inner dimension divided), with two all-reduces of the
      activations per layer.  Only supported for scenarios whose spec
      declares a :class:`~repro.workloads.scenario.TensorParallelSpec`.
    """

    tpu_config: TPUConfig
    num_devices: int
    link: ICILink = field(default_factory=ICILink)
    parallelism: str = "pipeline"
    #: Optional externally owned simulator (e.g. the sweep engine's caching
    #: simulator, so per-layer graphs are shared across device counts).  Must
    #: be configured with the same ``tpu_config`` as the system.
    simulator: InferenceSimulator | None = None

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if self.parallelism not in ("pipeline", "tensor"):
            raise ValueError(f"unknown parallelism '{self.parallelism}' "
                             "(expected 'pipeline' or 'tensor')")
        if self.simulator is not None and self.simulator.tpu_config != self.tpu_config:
            raise ValueError("injected simulator is configured for "
                             f"'{self.simulator.tpu_config.name}', not "
                             f"'{self.tpu_config.name}'")
        self.topology = RingTopology(num_devices=self.num_devices, link=self.link)
        self._simulator = (self.simulator if self.simulator is not None
                           else InferenceSimulator(self.tpu_config))

    # -------------------------------------------------------------- scenarios
    def simulate_scenario(self, spec: ScenarioSpec, model: Any,
                          settings: Any) -> MultiDeviceResult:
        """Steady-state throughput of any registered scenario on the ring."""
        spec.check(model, settings)
        if self.parallelism == "tensor" and self.num_devices > 1:
            return self._simulate_tensor_parallel(spec, model, settings)
        return self._simulate_pipeline(spec.build(model, settings))

    def _simulate_pipeline(self, scenario: Scenario) -> MultiDeviceResult:
        """Pipeline parallelism: each device owns ``ceil(units / devices)``
        of the scenario's sliceable units; one activation hop per boundary."""
        units_per_device = ceil_div(scenario.pipeline_units, self.num_devices)

        stage_seconds = 0.0
        mxu_energy = 0.0
        total_energy = 0.0
        for stage in scenario.stages:
            graph = self._simulator.run_graph(stage.graph)
            stage_seconds += stage.repeats_per_unit * units_per_device * graph.total_seconds
            full_repeat = stage.repeats_per_unit * scenario.pipeline_units
            mxu_energy += full_repeat * graph.mxu_energy
            total_energy += full_repeat * graph.total_energy.total

        hops = 0.0
        if self.num_devices > 1:
            hops = sum(hop.count * self._hop_seconds(hop.bytes) for hop in scenario.hops)

        return MultiDeviceResult(
            model_name=scenario.model_name,
            tpu_name=self.tpu_config.name,
            num_devices=self.num_devices,
            stage_occupancy_seconds=stage_seconds,
            communication_seconds=hops,
            items_per_group=scenario.items,
            item_unit=scenario.item_unit,
            mxu_energy_joules=mxu_energy,
            total_energy_joules=total_energy,
        )

    def _simulate_tensor_parallel(self, spec: ScenarioSpec, model: Any,
                                  settings: Any) -> MultiDeviceResult:
        """Tensor parallelism: every device runs a shard of every unit."""
        if spec.tensor_parallel is None:
            raise ValueError(
                f"tensor parallelism is not modelled for scenario '{spec.name}'; "
                "use parallelism='pipeline'")
        degree = self.num_devices
        shard = spec.tensor_parallel.shard(model, degree)
        scenario = spec.build(shard, settings)

        occupancy = 0.0
        mxu_energy = 0.0
        total_energy = 0.0
        for stage in scenario.stages:
            graph = self._simulator.run_graph(stage.graph)
            full_repeat = stage.repeats_per_unit * scenario.pipeline_units
            occupancy += full_repeat * graph.total_seconds
            mxu_energy += degree * full_repeat * graph.mxu_energy
            total_energy += degree * full_repeat * graph.total_energy.total

        communication = sum(
            hop.count * self._all_reduce_seconds(hop.bytes)
            for hop in spec.tensor_parallel.all_reduce_hops(model, settings))

        return MultiDeviceResult(
            model_name=getattr(model, "name", scenario.model_name),
            tpu_name=self.tpu_config.name,
            num_devices=self.num_devices,
            stage_occupancy_seconds=occupancy,
            communication_seconds=communication,
            items_per_group=scenario.items,
            item_unit=scenario.item_unit,
            mxu_energy_joules=mxu_energy,
            total_energy_joules=total_energy,
        )

    # ------------------------------------------------------------------ named
    def simulate_llm(self, llm: LLMConfig,
                     settings: LLMInferenceSettings | None = None) -> MultiDeviceResult:
        """Steady-state LLM serving throughput on the ring.

        Resolves the model's default scenario, so an MoE configuration runs
        its expert layers here without any further wiring.
        """
        from repro.workloads.registry import scenario_for

        settings = settings if settings is not None else LLMInferenceSettings()
        return self.simulate_scenario(scenario_for(llm), llm, settings)

    def simulate_dit(self, dit: DiTConfig,
                     settings: DiTInferenceSettings | None = None) -> MultiDeviceResult:
        """Steady-state DiT sampling throughput on the ring."""
        from repro.workloads.registry import scenario_for

        settings = settings if settings is not None else DiTInferenceSettings()
        if self.parallelism == "tensor" and self.num_devices > 1:
            raise ValueError("tensor parallelism is only modelled for LLM workloads; "
                             "use parallelism='pipeline' for DiT")
        return self.simulate_scenario(scenario_for(dit), dit, settings)

    # ------------------------------------------------------------ internals
    def _hop_seconds(self, num_bytes: float) -> float:
        cycles = self.topology.point_to_point_cycles(num_bytes)
        return cycles / (self.link.frequency_ghz * 1e9)

    def _all_reduce_seconds(self, num_bytes: float) -> float:
        cycles = self.topology.all_reduce_cycles(num_bytes)
        return cycles / (self.link.frequency_ghz * 1e9)

    def per_layer_results(self, graph_result: GraphResult) -> GraphResult:
        """Expose the underlying per-layer result (for tests and reports)."""
        return graph_result
