"""Tests for the benchmark-regression gate (`scripts/check_bench_regression.py`)."""

import importlib.util
import json
import pathlib
import sys

import pytest

SCRIPT = (pathlib.Path(__file__).resolve().parent.parent
          / "scripts" / "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = gate  # dataclass processing needs the module visible
_spec.loader.exec_module(gate)


def wall(fresh, base, fail=0.25, warn=0.10):
    metric = gate.Metric("wall_seconds", "wall")
    verdict, _ = gate.compare("BENCH_x.json", metric, fresh, base, fail, warn)
    return verdict


class TestWallComparison:
    def test_within_thresholds_is_ok(self):
        assert wall(1.02, 1.0) == "ok"

    def test_large_relative_regression_fails(self):
        assert wall(2.0, 1.0) == "fail"

    def test_warn_band(self):
        assert wall(1.2, 1.0) == "warn"

    def test_absolute_floor_shields_small_deltas(self):
        # +100% relative but only 0.1s absolute: under the floor, never gates.
        assert wall(0.2, 0.1) == "ok"

    def test_zero_baseline_does_not_divide(self):
        # Regression: a zero baseline (fully cached re-sweep records a 0.0
        # wall-time) must apply the absolute noise floor first instead of
        # dividing — and must still catch a genuinely large regression.
        assert wall(0.1, 0.0) == "ok"       # under the floor: noise
        assert wall(10.0, 0.0) == "fail"    # way past the floor: regression

    def test_near_zero_baseline_respects_the_floor(self):
        # 1 ms -> 100 ms is a 100x ratio but a sub-floor absolute delta;
        # past the warn floor it degrades gracefully instead of failing.
        assert wall(0.1, 0.001) == "ok"
        assert wall(0.2, 0.001) == "warn"
        assert wall(5.0, 0.001) == "fail"

    def test_improvements_never_gate(self):
        assert wall(0.5, 10.0) == "ok"


class TestOtherKinds:
    def test_rate_gates_on_absolute_drops(self):
        metric = gate.Metric("cache_hit_rate", "rate")
        assert gate.compare("b", metric, 0.992, 0.995, 0.25, 0.10)[0] == "ok"
        assert gate.compare("b", metric, 0.98, 0.99, 0.25, 0.10)[0] == "warn"
        assert gate.compare("b", metric, 0.90, 0.99, 0.25, 0.10)[0] == "fail"

    def test_count_fails_on_any_increase(self):
        metric = gate.Metric("simulations", "count")
        assert gate.compare("b", metric, 0.0, 0.0, 0.25, 0.10)[0] == "ok"
        assert gate.compare("b", metric, 1.0, 0.0, 0.25, 0.10)[0] == "fail"

    def test_overhead_gates_on_the_absolute_ceiling(self):
        metric = gate.Metric("overhead_fraction", "overhead")
        assert gate.compare("b", metric, 0.02, 0.01, 0.25, 0.10)[0] == "ok"
        assert gate.compare("b", metric, 0.04, 0.01, 0.25, 0.10)[0] == "warn"
        assert gate.compare("b", metric, 0.06, 0.01, 0.25, 0.10)[0] == "fail"

    def test_overhead_ignores_the_baseline(self):
        # The budget is a contract, not a trajectory: halving a failing
        # overhead is still a failure, and a 100x jump that stays under
        # the ceiling is still ok.
        metric = gate.Metric("overhead_fraction", "overhead")
        assert gate.compare("b", metric, 0.06, 0.12, 0.25, 0.10)[0] == "fail"
        assert gate.compare("b", metric, 0.02, 0.0002, 0.25, 0.10)[0] == "ok"

    def test_obs_record_is_gated(self):
        assert "BENCH_obs.json" in gate.BENCH_METRICS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            gate.compare("b", gate.Metric("x", "magic"), 1.0, 1.0, 0.25, 0.10)

    def test_metric_read_path_and_errors(self):
        metric = gate.Metric("report.wall", "wall")
        assert metric.read({"report": {"wall": 1.5}}) == 1.5
        with pytest.raises(KeyError, match="missing"):
            metric.read({"report": {}})
        with pytest.raises(TypeError, match="not numeric"):
            metric.read({"report": {"wall": "fast"}})


class TestMainVerdicts:
    def make_records(self, tmp_path, fresh_value, base_value):
        bench_dir = tmp_path / "fresh"
        base_dir = tmp_path / "base"
        bench_dir.mkdir()
        base_dir.mkdir()
        for name, metrics in gate.BENCH_METRICS.items():
            fresh = {}
            base = {}
            for metric in metrics:
                target_fresh = fresh
                target_base = base
                *parents, leaf = metric.path.split(".")
                for part in parents:
                    target_fresh = target_fresh.setdefault(part, {})
                    target_base = target_base.setdefault(part, {})
                # Counts must stay at zero and overheads under their
                # absolute ceiling for a run to read as clean.
                zero_kinds = ("count", "overhead")
                value_fresh = 0.0 if metric.kind in zero_kinds else fresh_value
                value_base = 0.0 if metric.kind in zero_kinds else base_value
                target_fresh[leaf] = value_fresh
                target_base[leaf] = value_base
            (bench_dir / name).write_text(json.dumps(fresh), encoding="utf-8")
            (base_dir / name).write_text(json.dumps(base), encoding="utf-8")
        return bench_dir, base_dir

    def test_clean_run_passes(self, tmp_path, capsys):
        bench_dir, base_dir = self.make_records(tmp_path, 1.0, 1.0)
        code = gate.main(["--bench-dir", str(bench_dir),
                          "--baseline-dir", str(base_dir)])
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_gross_regression_fails(self, tmp_path, capsys):
        bench_dir, base_dir = self.make_records(tmp_path, 10.0, 1.0)
        code = gate.main(["--bench-dir", str(bench_dir),
                          "--baseline-dir", str(base_dir)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_fresh_record_fails(self, tmp_path):
        bench_dir, base_dir = self.make_records(tmp_path, 1.0, 1.0)
        next(iter(bench_dir.glob("BENCH_*.json"))).unlink()
        assert gate.main(["--bench-dir", str(bench_dir),
                          "--baseline-dir", str(base_dir)]) == 1

    def test_optimize_record_is_gated(self):
        assert "BENCH_optimize.json" in gate.BENCH_METRICS
        kinds = {metric.path: metric.kind
                 for metric in gate.BENCH_METRICS["BENCH_optimize.json"]}
        assert kinds["warm_simulations"] == "count"
