#!/usr/bin/env python
"""Regenerate the golden files from the current model.

Run this only when a change *intentionally* shifts the reproduction's
numbers or the trace schema; the diff of the golden file then documents
exactly what moved::

    PYTHONPATH=src python tests/golden/regenerate.py

Covers ``table_iv.json`` (the paper reproduction) and
``chrome_trace.json`` (the pinned Chrome trace-event export schema).
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.core.explorer import ArchitectureExplorer
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.obs.export import chrome_trace_dict

GOLDEN_PATH = pathlib.Path(__file__).parent / "table_iv.json"
TRACE_GOLDEN_PATH = pathlib.Path(__file__).parent / "chrome_trace.json"


def main() -> None:
    explorer = ArchitectureExplorer(
        llm_settings=LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                          decode_kv_samples=4),
        dit_settings=DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50))
    rows = explorer.explore()
    golden = {
        "description": "Table IV / Fig. 7 exploration at paper settings "
                       "(GPT-3-30B 1024+512 tokens batch 8, DiT-XL/2 512px 50 steps, INT8)",
        "rows": [
            {"design": row.design, "workload": row.workload, "peak_tops": row.peak_tops,
             "latency_seconds": row.latency_seconds,
             "mxu_energy_joules": row.mxu_energy_joules,
             "latency_vs_baseline": row.latency_vs_baseline,
             "energy_saving_vs_baseline": row.energy_saving_vs_baseline}
            for row in rows
        ],
        "best_design": {
            workload: {"design": best.design,
                       "latency_vs_baseline": best.latency_vs_baseline,
                       "energy_saving_vs_baseline": best.energy_saving_vs_baseline}
            for workload, best in (
                ("llm", explorer.best_design(rows, "llm", max_latency_increase=0.25)),
                ("dit", explorer.best_design(rows, "dit", max_latency_increase=0.25)))
        },
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH} ({len(golden['rows'])} rows)")

    # The trace golden is generated from the same synthetic telemetry the
    # schema tests build, so the two can never drift apart.
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
    from test_obs import synthetic_telemetry
    trace = chrome_trace_dict(synthetic_telemetry())
    TRACE_GOLDEN_PATH.write_text(json.dumps(trace, indent=2, sort_keys=True)
                                 + "\n", encoding="utf-8")
    print(f"wrote {TRACE_GOLDEN_PATH} "
          f"({len(trace['traceEvents'])} trace events)")


if __name__ == "__main__":
    main()
