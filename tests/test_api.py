"""Tests for the unified ``repro.api`` facade: schemas, errors, accounting.

The contract under test is the one every surface shares: requests are
frozen dataclasses that validate at construction and round-trip JSON
exactly; failures are structured :class:`ApiError` values; facade calls
return response envelopes whose accounting header states exactly what
the run cost, and a warm store serves any repeat with zero new
simulations and a byte-identical payload.
"""

import json

import pytest

from repro import api
from repro.api import (
    ApiError,
    ApiRequestError,
    AutoconfigPreviewRequest,
    FleetRequest,
    OptimizeRequest,
    SimulateRequest,
    SweepRequest,
    request_fingerprint,
    request_from_dict,
    response_from_dict,
)
from repro.sweep.store import ResultStore

#: Small, fast serving run shared by the facade tests.
FAST = dict(llm="llama2-7b", input_tokens=64, output_tokens=16,
            rate=20.0, requests=30, seed=7)


def strip_accounting(payload):
    """Drop the provenance header fields that legitimately differ warm."""
    return {key: value for key, value in payload.items()
            if key not in ("served_from_store", "new_simulations",
                           "store_hits", "store_misses")}


class TestRequestRoundTrip:
    @pytest.mark.parametrize("request_obj", [
        SimulateRequest(**FAST),
        SimulateRequest(**FAST, replicas=2,
                        faults=("replica-crash:at_s=1,duration_s=2",)),
        FleetRequest(rate=30.0, llm="llama2-7b", input_tokens=64,
                     output_tokens=16, requests=30),
        SweepRequest(designs=("baseline",), models=("llama2-7b",),
                     batches=(1,), input_tokens=64, output_tokens=16),
        OptimizeRequest(llm="llama2-7b", designs=("baseline",),
                        replica_counts=(1,), input_tokens=64,
                        output_tokens=16, requests=30),
        AutoconfigPreviewRequest(llm="llama2-7b"),
    ], ids=["simulate", "simulate-fleet", "fleet", "sweep", "optimize",
            "autoconfig-preview"])
    def test_to_dict_from_dict_is_exact(self, request_obj):
        payload = request_obj.to_dict()
        # Payload is pure JSON: survives a serialise/parse trip unchanged.
        assert json.loads(json.dumps(payload)) == payload
        assert payload["kind"] == request_obj.kind
        assert payload["schema_version"] == api.SCHEMA_VERSION
        decoded = type(request_obj).from_dict(payload)
        assert decoded == request_obj
        assert decoded.to_dict() == payload

    def test_request_from_dict_dispatches_on_kind(self):
        decoded = request_from_dict(SimulateRequest(**FAST).to_dict())
        assert isinstance(decoded, SimulateRequest)
        assert decoded.rate == FAST["rate"]

    def test_defaults_need_no_fields_except_fleet_rate(self):
        # Every kind except fleet constructs from just its kind marker.
        for kind in ("simulate", "sweep", "optimize", "autoconfig-preview"):
            assert request_from_dict({"kind": kind}).kind == kind
        with pytest.raises(ApiRequestError) as excinfo:
            request_from_dict({"kind": "fleet"})
        assert excinfo.value.error.code == "missing-field"
        assert excinfo.value.error.field == "rate"


class TestStrictDecoding:
    def test_unknown_field_is_rejected(self):
        payload = SimulateRequest(**FAST).to_dict()
        payload["rte"] = 12.0
        with pytest.raises(ApiRequestError) as excinfo:
            SimulateRequest.from_dict(payload)
        assert excinfo.value.error.code == "unknown-field"
        assert excinfo.value.error.field == "rte"

    def test_mismatched_kind_is_rejected(self):
        payload = SimulateRequest(**FAST).to_dict()
        with pytest.raises(ApiRequestError) as excinfo:
            FleetRequest.from_dict(payload)
        assert excinfo.value.error.code == "invalid-kind"

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ApiRequestError) as excinfo:
            request_from_dict({"kind": "simulte"})
        assert excinfo.value.error.code == "invalid-kind"
        assert "simulte" in excinfo.value.error.message

    def test_unsupported_schema_version_is_rejected(self):
        payload = SimulateRequest(**FAST).to_dict()
        payload["schema_version"] = api.SCHEMA_VERSION + 1
        with pytest.raises(ApiRequestError) as excinfo:
            SimulateRequest.from_dict(payload)
        assert excinfo.value.error.code == "unsupported-schema-version"

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(ApiRequestError) as excinfo:
            request_from_dict([1, 2, 3])
        assert excinfo.value.error.code == "invalid-json"

    @pytest.mark.parametrize("overrides, field", [
        (dict(design="gpu"), "design"),
        (dict(scheduler="lifo"), "scheduler"),
        (dict(trace="uniform"), "trace"),
        (dict(faults=("bogus:at_s=1",)), "faults[0]"),
        (dict(shards=0), "shards"),
    ])
    def test_invalid_field_names_the_field(self, overrides, field):
        with pytest.raises(ApiRequestError) as excinfo:
            SimulateRequest(**{**FAST, **overrides})
        assert excinfo.value.error.code == "invalid-field"
        assert excinfo.value.error.field == field

    def test_error_render_carries_code_message_and_field(self):
        error = ApiError(code="invalid-field", message="rate must be positive",
                         field="rate")
        assert error.render() == \
            "invalid-field: rate must be positive (field: rate)"
        assert ApiError.from_dict(error.to_dict()) == error

    def test_unknown_error_code_is_a_bug(self):
        with pytest.raises(ValueError, match="unknown ApiError code"):
            ApiError(code="oops", message="x")


class TestRequestFingerprint:
    def test_execution_hints_do_not_change_identity(self):
        serial = SimulateRequest(**FAST, shards=1)
        sharded = SimulateRequest(**FAST, shards=4)
        assert request_fingerprint(serial) == request_fingerprint(sharded)
        one = SweepRequest(designs=("baseline",), models=("llama2-7b",),
                           batches=(1,), input_tokens=64, output_tokens=16)
        many = SweepRequest(designs=("baseline",), models=("llama2-7b",),
                            batches=(1,), input_tokens=64, output_tokens=16,
                            workers=4)
        assert request_fingerprint(one) == request_fingerprint(many)

    def test_content_changes_identity(self):
        base = SimulateRequest(**FAST)
        bumped = SimulateRequest(**{**FAST, "rate": FAST["rate"] + 1})
        assert request_fingerprint(base) != request_fingerprint(bumped)


class TestSimulateFacade:
    def test_cold_then_warm_store_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        request = SimulateRequest(**FAST)
        cold = api.simulate(request, store=store)
        assert cold.new_simulations == 1
        assert not cold.served_from_store
        assert cold.store_misses == 1
        warm = api.simulate(request, store=store)
        assert warm.new_simulations == 0
        assert warm.served_from_store
        assert warm.store_hits == 1
        assert strip_accounting(warm.to_dict()) == \
            strip_accounting(cold.to_dict())

    def test_report_object_decodes_serving_report(self, tmp_path):
        response = api.simulate(SimulateRequest(**FAST))
        report = response.report_object()
        assert not response.fleet
        assert report.num_requests == FAST["requests"]
        assert report.to_dict() == dict(response.report)

    def test_fleet_shaped_run_takes_cluster_path(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        request = SimulateRequest(**FAST, replicas=2)
        cold = api.simulate(request, store=store)
        assert cold.fleet
        assert cold.report_object().fleet_size == 2
        warm = api.simulate(request, store=store)
        assert warm.served_from_store
        assert dict(warm.report) == dict(cold.report)

    def test_unusable_store_is_an_engine_error(self):
        store = ResultStore("/proc/nope/store.jsonl")
        with pytest.raises(ApiRequestError) as excinfo:
            api.simulate(SimulateRequest(**FAST), store=store)
        assert excinfo.value.error.code == "engine-error"


class TestOtherFacades:
    def test_fleet_warm_repeat_costs_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        request = FleetRequest(rate=30.0, llm="llama2-7b", input_tokens=64,
                               output_tokens=16, requests=30)
        cold = api.fleet(request, store=store)
        assert cold.new_simulations > 0
        plan = cold.plan_object()
        assert plan.replicas >= 1
        assert len(plan.evaluations) == len(cold.plan["evaluations"])
        warm = api.fleet(request, store=store)
        assert warm.new_simulations == 0
        assert warm.served_from_store
        assert warm.store_hits > 0
        assert dict(warm.plan) == dict(cold.plan)

    def test_sweep_warm_repeat_costs_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        request = SweepRequest(designs=("baseline",), models=("llama2-7b",),
                               batches=(1,), input_tokens=64, output_tokens=16)
        cold = api.sweep(request, store=store)
        assert cold.new_simulations > 0
        assert cold.rows
        assert [r.to_dict() for r in cold.row_objects()] == \
            [dict(row) for row in cold.rows]
        warm = api.sweep(request, store=store)
        assert warm.new_simulations == 0
        assert warm.served_from_store
        assert warm.rows == cold.rows

    def test_optimize_warm_repeat_costs_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        request = OptimizeRequest(llm="llama2-7b", designs=("baseline",),
                                  replica_counts=(1,), input_tokens=64,
                                  output_tokens=16, requests=30)
        cold = api.optimize(request, store=store)
        assert cold.new_simulations > 0
        warm = api.optimize(request, store=store)
        assert warm.new_simulations == 0
        assert warm.served_from_store
        cold_frontier = dict(cold.frontier)
        warm_frontier = dict(warm.frontier)
        for counter in ("short_runs", "full_runs", "store_served"):
            cold_frontier.pop(counter), warm_frontier.pop(counter)
        assert warm_frontier == cold_frontier
        assert len(warm.frontier_object().points) == \
            len(warm.frontier["points"])

    def test_autoconfig_preview_never_simulates(self):
        response = api.autoconfig_preview(AutoconfigPreviewRequest(
            llm="llama2-7b"))
        assert response.new_simulations == 0
        assert response.store_hits == response.store_misses == 0
        assert not response.served_from_store
        assert response.preview["capacity"]["min_devices"] >= 1
        assert response.preview["fleet"]["lower_bound_replicas"] >= 1


class TestRunDispatcher:
    def test_dispatches_raw_payload_dicts(self):
        response = api.run({"kind": "autoconfig-preview",
                            "llm": "llama2-7b"})
        assert response.kind == "autoconfig-preview"

    def test_rejects_non_request_objects(self):
        with pytest.raises(ApiRequestError) as excinfo:
            api.run(object())
        assert excinfo.value.error.code == "invalid-kind"


class TestResponseRoundTrip:
    def test_envelope_round_trips_byte_exactly(self):
        response = api.simulate(SimulateRequest(**FAST))
        payload = response.to_dict()
        wire = json.dumps(payload, sort_keys=True)
        decoded = response_from_dict(json.loads(wire))
        assert decoded == response
        assert json.dumps(decoded.to_dict(), sort_keys=True) == wire

    def test_unknown_response_field_is_rejected(self):
        payload = api.autoconfig_preview(
            AutoconfigPreviewRequest(llm="llama2-7b")).to_dict()
        payload["extra"] = 1
        with pytest.raises(ApiRequestError) as excinfo:
            response_from_dict(payload)
        assert excinfo.value.error.code == "unknown-field"
