"""Tests for tile shapes and VMEM tiling selection."""

import pytest

from repro.common import Precision
from repro.mapping.tiling import TileShape, Tiling, choose_vmem_tiling, matmul_tile_bytes


class TestTileShape:
    def test_macs(self):
        assert TileShape(2, 3, 4).macs == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            TileShape(0, 1, 1)


class TestTiling:
    def test_tile_counts(self):
        tiling = Tiling(problem=TileShape(100, 200, 300), tile=TileShape(50, 100, 100))
        assert tiling.m_tiles == 2
        assert tiling.k_tiles == 2
        assert tiling.n_tiles == 3
        assert tiling.num_tiles == 12

    def test_covers_problem(self):
        tiling = Tiling(problem=TileShape(100, 200, 300), tile=TileShape(64, 128, 128))
        assert tiling.covers_problem()

    def test_tile_larger_than_problem_rejected(self):
        with pytest.raises(ValueError):
            Tiling(problem=TileShape(10, 10, 10), tile=TileShape(20, 10, 10))


class TestTileBytes:
    def test_int8_footprint(self):
        tile = TileShape(4, 8, 16)
        assert matmul_tile_bytes(tile, Precision.INT8) == 4 * 8 + 8 * 16 + 4 * 16 * 4

    def test_without_output(self):
        tile = TileShape(4, 8, 16)
        assert matmul_tile_bytes(tile, Precision.INT8, include_output=False) == 4 * 8 + 8 * 16

    def test_bf16_larger(self):
        tile = TileShape(4, 8, 16)
        assert matmul_tile_bytes(tile, Precision.BF16) > matmul_tile_bytes(tile, Precision.INT8)


class TestChooseVmemTiling:
    def test_small_problem_untouched(self):
        tiling = choose_vmem_tiling(64, 64, 64, Precision.INT8, vmem_capacity_bytes=16 * 2**20)
        assert tiling.tile == TileShape(64, 64, 64)
        assert tiling.num_tiles == 1

    def test_large_problem_fits_budget(self):
        capacity = 16 * 2**20
        tiling = choose_vmem_tiling(8192, 7168, 21504, Precision.INT8, capacity)
        assert matmul_tile_bytes(tiling.tile, Precision.INT8) <= capacity // 2
        assert tiling.covers_problem()

    def test_double_buffering_halves_budget(self):
        capacity = 1 << 20
        single = choose_vmem_tiling(2048, 2048, 2048, Precision.INT8, capacity,
                                    double_buffered=False)
        double = choose_vmem_tiling(2048, 2048, 2048, Precision.INT8, capacity,
                                    double_buffered=True)
        assert matmul_tile_bytes(double.tile, Precision.INT8) <= \
            matmul_tile_bytes(single.tile, Precision.INT8)

    def test_gemv_tile_keeps_single_row(self):
        tiling = choose_vmem_tiling(1, 7168, 7168, Precision.INT8, 16 * 2**20)
        assert tiling.tile.m == 1
        assert tiling.covers_problem()

    def test_impossible_budget_raises(self):
        with pytest.raises(MemoryError):
            choose_vmem_tiling(1, 4096, 4096, Precision.INT8, vmem_capacity_bytes=64)
