"""Tests for the SCALE-Sim style systolic dataflow cycle models."""

import pytest

from repro.systolic.dataflows import (
    Dataflow,
    output_stationary_cycles,
    systolic_gemm_cycles,
    weight_stationary_cycles,
)


class TestWeightStationary:
    def test_single_fold_formula(self):
        # One fold: cycles = R + M + R + C - 2.
        result = weight_stationary_cycles(64, 128, 128, 128, 128, double_buffered=False)
        assert result.folds == 1
        assert result.total_cycles == 128 + 64 + 128 + 128 - 2

    def test_fold_count(self):
        result = weight_stationary_cycles(10, 256, 384, 128, 128, double_buffered=False)
        assert result.folds == 2 * 3

    def test_gemv_utilization_is_poor(self):
        # A GEMV on a 128×128 array achieves very low utilisation because the
        # fill/drain skew dominates — the effect the paper's CIM-MXU removes.
        result = weight_stationary_cycles(1, 128, 128, 128, 128, double_buffered=False)
        assert result.utilization < 0.1

    def test_large_gemm_utilization_is_high(self):
        result = weight_stationary_cycles(4096, 2048, 2048, 128, 128, double_buffered=True)
        assert result.utilization > 0.8

    def test_double_buffering_helps_when_m_large(self):
        naive = weight_stationary_cycles(4096, 1024, 1024, 128, 128, double_buffered=False)
        buffered = weight_stationary_cycles(4096, 1024, 1024, 128, 128, double_buffered=True)
        assert buffered.total_cycles < naive.total_cycles

    def test_double_buffering_limited_by_weight_port_for_gemv(self):
        # With M << R the fold rate is limited by the weight load (R cycles),
        # so double buffering cannot make a fold cheaper than R.
        buffered = weight_stationary_cycles(1, 1024, 1024, 128, 128, double_buffered=True)
        folds = 8 * 8
        assert buffered.total_cycles >= folds * 128

    def test_macs_counted_exactly(self):
        result = weight_stationary_cycles(7, 100, 200, 128, 128, double_buffered=False)
        assert result.macs == 7 * 100 * 200


class TestOutputStationary:
    def test_single_fold_formula(self):
        result = output_stationary_cycles(128, 64, 128, 128, 128)
        assert result.folds == 1
        assert result.total_cycles == 64 + 128 + 128 - 2

    def test_fold_count_uses_m_and_n(self):
        result = output_stationary_cycles(256, 64, 384, 128, 128)
        assert result.folds == 2 * 3

    def test_no_weight_load_cycles(self):
        result = output_stationary_cycles(128, 128, 128, 128, 128)
        assert result.weight_load_cycles == 0


class TestDispatch:
    def test_dispatch_matches_direct_calls(self):
        ws = systolic_gemm_cycles(32, 256, 256, 128, 128, Dataflow.WEIGHT_STATIONARY)
        assert ws.total_cycles == weight_stationary_cycles(
            32, 256, 256, 128, 128, double_buffered=False).total_cycles

        ws_db = systolic_gemm_cycles(32, 256, 256, 128, 128, Dataflow.WEIGHT_STATIONARY_DB)
        assert ws_db.total_cycles == weight_stationary_cycles(
            32, 256, 256, 128, 128, double_buffered=True).total_cycles

        os_ = systolic_gemm_cycles(32, 256, 256, 128, 128, Dataflow.OUTPUT_STATIONARY)
        assert os_.total_cycles == output_stationary_cycles(32, 256, 256, 128, 128).total_cycles

    def test_utilization_never_exceeds_one(self):
        for dataflow in Dataflow:
            result = systolic_gemm_cycles(4096, 4096, 4096, 128, 128, dataflow)
            assert 0.0 < result.utilization <= 1.0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            systolic_gemm_cycles(0, 128, 128, 128, 128)
        with pytest.raises(ValueError):
            systolic_gemm_cycles(128, 128, 128, 0, 128)
