"""Tests for the declarative scenario pipeline and the scenario registry.

Pins the refactor's contract: the generic ``run_scenario`` path reproduces
the legacy ``simulate_*`` results exactly, the registry resolves default
scenarios by most-specific model type, and the two new scenarios (MoE,
chat-serving) run end to end — single chip, sweep engine, multi-device —
and appear in the structured exports.
"""

from __future__ import annotations

import pytest

from repro.core.designs import design_a, tpuv4i_baseline
from repro.core.simulator import InferenceSimulator, LLMInferenceSettings
from repro.parallel.multi_device import MultiTPUSystem
from repro.sweep.engine import SweepEngine
from repro.sweep.export import to_csv, to_json
from repro.sweep.grid import SweepGrid, SweepPoint, make_point
from repro.workloads.chat import (
    CHAT_SERVING_SCENARIO,
    ChatServingSettings,
    RequestClass,
    build_chat_serving_scenario,
)
from repro.workloads.llm import LLMConfig, build_llm_serving_scenario
from repro.workloads.moe import MIXTRAL_8X7B, MoEConfig, build_moe_layer
from repro.workloads.registry import (
    SCENARIO_REGISTRY,
    get_scenario,
    scenario_for,
    scenarios_supporting,
)

TINY_MOE = MoEConfig(name="tiny-moe", num_layers=2, num_heads=8, d_model=512,
                     d_ff=1024, vocab_size=1000, num_experts=4, top_k=2)

TINY_MIX = ChatServingSettings(
    batch=2,
    request_classes=(RequestClass(input_tokens=32, output_tokens=8, weight=1.0),
                     RequestClass(input_tokens=128, output_tokens=16, weight=1.0)),
    decode_kv_samples=2)


@pytest.fixture(scope="module")
def simulator():
    return InferenceSimulator(design_a())


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert {"llm-serving", "dit-sampling", "moe-serving",
                "chat-serving"} <= set(SCENARIO_REGISTRY)

    def test_default_resolution_is_most_specific(self, tiny_llm, tiny_dit):
        assert scenario_for(tiny_llm).name == "llm-serving"
        assert scenario_for(tiny_dit).name == "dit-sampling"
        # MoEConfig is an LLMConfig, but its own default wins.
        assert scenario_for(TINY_MOE).name == "moe-serving"
        assert scenario_for(MIXTRAL_8X7B).name == "moe-serving"

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="registered scenarios"):
            get_scenario("training")

    def test_capability_filtering(self, tiny_llm, tiny_dit):
        llm_names = {spec.name for spec in scenarios_supporting(tiny_llm)}
        assert {"llm-serving", "chat-serving"} <= llm_names
        assert "dit-sampling" not in llm_names
        assert "moe-serving" not in llm_names
        moe_names = {spec.name for spec in scenarios_supporting(TINY_MOE)}
        assert {"llm-serving", "chat-serving", "moe-serving"} <= moe_names
        assert {spec.name for spec in scenarios_supporting(tiny_dit)} == {"dit-sampling"}

    def test_spec_check_rejects_mismatches(self, tiny_llm, tiny_dit):
        spec = get_scenario("llm-serving")
        with pytest.raises(ValueError, match="expects a LLMConfig"):
            spec.check(tiny_dit, LLMInferenceSettings())
        with pytest.raises(ValueError, match="do not match"):
            spec.check(tiny_llm, TINY_MIX)


class TestGenericPipeline:
    def test_run_scenario_equals_legacy_llm_path(self, simulator, tiny_llm,
                                                 tiny_llm_settings):
        scenario = build_llm_serving_scenario(tiny_llm, tiny_llm_settings)
        via_scenario = simulator.run_scenario(scenario)
        legacy = simulator.simulate_llm_inference(tiny_llm, tiny_llm_settings)
        assert via_scenario.total_seconds == legacy.total_seconds
        assert via_scenario.mxu_energy == legacy.mxu_energy
        assert [s.name for s in via_scenario.stages] == [s.name for s in legacy.stages]

    def test_stage_repeats_scale_with_layers(self, simulator, tiny_llm,
                                             tiny_llm_settings):
        result = simulator.simulate_llm_inference(tiny_llm, tiny_llm_settings)
        assert result.stage("prefill").repeat == tiny_llm.num_layers
        decode_repeats = sum(s.repeat for s in result.stages
                             if s.name.startswith("decode"))
        assert decode_repeats == pytest.approx(
            tiny_llm.num_layers * tiny_llm_settings.output_tokens)

    def test_simulate_resolves_default_scenario(self, simulator, tiny_llm,
                                                tiny_llm_settings):
        by_name = simulator.simulate(tiny_llm, tiny_llm_settings, scenario="llm-serving")
        by_default = simulator.simulate(tiny_llm, tiny_llm_settings)
        assert by_name.total_seconds == by_default.total_seconds

    def test_simulate_default_settings(self, simulator, tiny_dit):
        result = simulator.simulate(tiny_dit)
        assert result.total_seconds > 0
        assert result.item_unit == "image"


class TestMoEScenario:
    def test_moe_layer_contains_router_and_gating(self):
        graph = build_moe_layer(TINY_MOE, "prefill", batch=2, seq_len=32)
        names = [op.name for op in graph]
        assert any("router" in name for name in names)
        assert any("gating" in name for name in names)
        assert any("expert_ffn1" in name for name in names)

    def test_moe_costs_less_than_dense_equivalent(self, simulator,
                                                  tiny_llm_settings):
        # A dense model with every expert's FFN active per token.
        dense = LLMConfig(name="tiny-dense", num_layers=2, num_heads=8, d_model=512,
                          d_ff=TINY_MOE.num_experts * 1024, vocab_size=1000)
        moe = simulator.simulate(TINY_MOE, tiny_llm_settings)
        dense_result = simulator.simulate(dense, tiny_llm_settings)
        assert moe.total_seconds < dense_result.total_seconds

    def test_moe_end_to_end_through_sweep(self):
        point = make_point("design-a", design_a(), TINY_MOE, batch=2,
                           input_tokens=32, output_tokens=8, decode_kv_samples=2)
        assert point.scenario == "moe-serving"
        row = SweepEngine().evaluate(point)
        assert row.scenario == "moe-serving"
        assert row.kind == "moe" and row.item_unit == "token"
        assert row.latency_seconds > 0 and row.throughput > 0

    def test_moe_pipeline_parallel(self, tiny_llm_settings):
        one = MultiTPUSystem(design_a(), 1).simulate_llm(TINY_MOE, tiny_llm_settings)
        two = MultiTPUSystem(design_a(), 2).simulate_llm(TINY_MOE, tiny_llm_settings)
        assert two.throughput > one.throughput
        assert two.mxu_energy_joules == pytest.approx(one.mxu_energy_joules)

    def test_moe_tensor_parallel_rejected(self, tiny_llm_settings):
        system = MultiTPUSystem(design_a(), 2, parallelism="tensor")
        with pytest.raises(ValueError, match="not modelled for scenario 'moe-serving'"):
            system.simulate_llm(TINY_MOE, tiny_llm_settings)


class TestChatScenario:
    def test_stages_cover_every_request_class(self, tiny_llm):
        scenario = build_chat_serving_scenario(tiny_llm, TINY_MIX)
        prefills = [s for s in scenario.stages if s.name.startswith("prefill")]
        assert len(prefills) == len(TINY_MIX.request_classes)
        # Each class contributes its traffic share of decode tokens.
        assert scenario.items == pytest.approx(
            TINY_MIX.batch * TINY_MIX.expected_output_tokens())

    def test_mix_fractions_normalised(self):
        assert sum(TINY_MIX.fractions()) == pytest.approx(1.0)

    def test_chat_costs_between_pure_classes(self, simulator, tiny_llm):
        chat = simulator.simulate(tiny_llm, TINY_MIX, scenario="chat-serving")
        shorter = simulator.simulate_llm_inference(tiny_llm, LLMInferenceSettings(
            batch=2, input_tokens=32, output_tokens=8, decode_kv_samples=2))
        longer = simulator.simulate_llm_inference(tiny_llm, LLMInferenceSettings(
            batch=2, input_tokens=128, output_tokens=16, decode_kv_samples=2))
        assert shorter.total_seconds < chat.total_seconds < longer.total_seconds

    def test_chat_on_moe_model_uses_expert_layers(self, tiny_llm):
        moe_scenario = build_chat_serving_scenario(TINY_MOE, TINY_MIX)
        assert any("gating" in op.name
                   for stage in moe_scenario.stages for op in stage.graph)
        dense_scenario = build_chat_serving_scenario(tiny_llm, TINY_MIX)
        assert not any("gating" in op.name
                       for stage in dense_scenario.stages for op in stage.graph)

    def test_chat_tensor_on_moe_rejected_not_silently_densified(self):
        # Regression: tensor sharding must not downcast an MoE model to a
        # dense LLM (which would silently drop router/gating/expert ops).
        system = MultiTPUSystem(design_a(), 2, parallelism="tensor")
        with pytest.raises(ValueError, match="dense"):
            system.simulate_scenario(CHAT_SERVING_SCENARIO, TINY_MOE, TINY_MIX)

    def test_chat_multi_device_and_tensor(self, tiny_llm):
        spec = CHAT_SERVING_SCENARIO
        pipeline = MultiTPUSystem(design_a(), 2).simulate_scenario(
            spec, tiny_llm, TINY_MIX)
        tensor = MultiTPUSystem(design_a(), 2, parallelism="tensor").simulate_scenario(
            spec, tiny_llm, TINY_MIX)
        assert pipeline.throughput > 0 and tensor.throughput > 0
        assert tensor.communication_seconds > pipeline.communication_seconds

    def test_settings_validation(self):
        with pytest.raises(ValueError, match="request class"):
            ChatServingSettings(request_classes=())
        with pytest.raises(ValueError):
            RequestClass(input_tokens=0, output_tokens=8)
        with pytest.raises(ValueError):
            RequestClass(input_tokens=8, output_tokens=8, weight=0.0)


class TestSweepIntegration:
    def test_grid_scenario_axis_skips_incompatible_pairs(self, tiny_dit):
        grid = SweepGrid(designs={"design-a": design_a()},
                         models=["llama2-7b", "dit-xl-2"],
                         scenarios=("chat-serving", "dit-sampling"),
                         batches=(1,))
        points = grid.points()
        assert len(points) == len(grid) == 2
        pairs = {(p.workload, p.scenario) for p in points}
        assert pairs == {("llama2-7b", "chat-serving"), ("dit-xl-2", "dit-sampling")}

    def test_default_grid_resolves_default_scenarios(self):
        grid = SweepGrid(designs={"design-a": design_a()}, batches=(1,))
        scenario_by_model = {p.workload: p.scenario for p in grid.points()}
        assert scenario_by_model["mixtral-8x7b"] == "moe-serving"
        assert scenario_by_model["gpt3-30b"] == "llm-serving"
        assert scenario_by_model["dit-xl-2"] == "dit-sampling"

    def test_new_scenarios_exported_with_settings_summary(self):
        points = [
            make_point("design-a", design_a(), TINY_MOE, batch=2, input_tokens=32,
                       output_tokens=8, decode_kv_samples=2),
            SweepPoint(design="design-a", config=design_a(), model=TINY_MOE,
                       settings=TINY_MIX, scenario="chat-serving"),
        ]
        rows = SweepEngine().sweep(points)
        encoded_json = to_json(rows)
        encoded_csv = to_csv(rows)
        assert "moe-serving" in encoded_json and "chat-serving" in encoded_json
        assert "settings_summary" in encoded_json
        assert "moe-serving" in encoded_csv and "chat-serving" in encoded_csv

    def test_scenario_distinguishes_cache_keys(self, tiny_llm):
        settings = LLMInferenceSettings(batch=2, input_tokens=32, output_tokens=8,
                                        decode_kv_samples=2)
        serving = SweepPoint(design="x", config=design_a(), model=TINY_MOE,
                             settings=settings, scenario="moe-serving")
        dense = SweepPoint(design="x", config=design_a(), model=TINY_MOE,
                           settings=settings, scenario="llm-serving")
        from repro.sweep.engine import point_key

        assert point_key(serving) != point_key(dense)

    def test_parallel_sweep_covers_new_scenarios(self):
        points = [
            make_point("baseline", tpuv4i_baseline(), TINY_MOE, batch=2,
                       input_tokens=32, output_tokens=8, decode_kv_samples=2),
            SweepPoint(design="design-a", config=design_a(), model=TINY_MOE,
                       settings=TINY_MIX, scenario="chat-serving"),
        ]
        serial = SweepEngine().sweep(points)
        parallel = SweepEngine().sweep(points, workers=2)
        assert parallel == serial
