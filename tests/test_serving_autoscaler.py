"""Tests for the autoscaling policies and the autoscaler registry."""

import pytest

from repro.serving.autoscaler import (
    AUTOSCALER_REGISTRY,
    AutoscalerPolicy,
    FleetView,
    fixed_autoscaler,
    get_autoscaler,
    queue_depth_autoscaler,
    register_autoscaler,
    utilisation_target_autoscaler,
)


def fleet_view(now=0.0, fleet=8, min_replicas=1, active=2, ready=None,
               outstanding=0, pressure=0.0, utilisation=0.0):
    return FleetView(now_s=now, fleet_size=fleet, min_replicas=min_replicas,
                     active_count=active,
                     ready_count=ready if ready is not None else active,
                     outstanding_requests=outstanding, kv_pressure=pressure,
                     utilisation=utilisation)


class TestRegistry:
    def test_builtin_policies_registered(self):
        for name in ("fixed", "queue-depth", "utilisation-target",
                     "forecasting"):
            assert get_autoscaler(name).name == name

    def test_unknown_autoscaler_lists_registered(self):
        with pytest.raises(KeyError, match="queue-depth"):
            get_autoscaler("predictive")

    def test_unknown_autoscaler_error_names_every_choice(self):
        with pytest.raises(KeyError) as excinfo:
            get_autoscaler("nope")
        message = str(excinfo.value)
        for name in AUTOSCALER_REGISTRY:
            assert name in message

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_autoscaler(AUTOSCALER_REGISTRY["fixed"])

    def test_negative_cold_start_rejected(self):
        with pytest.raises(ValueError, match="cold_start_s"):
            AutoscalerPolicy(name="bad", description="bad",
                             decide=lambda view, state: 1, cold_start_s=-1.0)


class TestFleetView:
    def test_queue_per_active(self):
        assert fleet_view(active=4, outstanding=12).queue_per_active == 3.0

    def test_queue_per_active_with_no_active(self):
        assert fleet_view(active=0, outstanding=5).queue_per_active == 0.0


class TestFixed:
    def test_always_full_fleet(self):
        policy = fixed_autoscaler()
        assert policy.decide(fleet_view(fleet=8, active=2), {}) == 8
        assert policy.cold_start_s == 0.0


class TestQueueDepth:
    def test_scales_out_above_threshold(self):
        policy = queue_depth_autoscaler(scale_up_queue=4.0)
        assert policy.decide(fleet_view(active=2, outstanding=10), {}) == 3

    def test_holds_inside_band(self):
        policy = queue_depth_autoscaler(scale_up_queue=4.0, scale_down_queue=1.0)
        assert policy.decide(fleet_view(active=2, outstanding=4), {}) == 2

    def test_scale_in_needs_sustained_quiet(self):
        policy = queue_depth_autoscaler(scale_down_queue=1.0, hold_s=10.0)
        state = {}
        quiet = lambda now: fleet_view(now=now, active=3, outstanding=0)  # noqa: E731
        assert policy.decide(quiet(0.0), state) == 3    # arms the timer
        assert policy.decide(quiet(5.0), state) == 3    # still holding
        assert policy.decide(quiet(10.0), state) == 2   # hold expired: one in
        assert policy.decide(quiet(12.0), state) == 3   # re-armed, holds again

    def test_busy_interval_resets_the_hold(self):
        policy = queue_depth_autoscaler(scale_up_queue=4.0,
                                        scale_down_queue=1.0, hold_s=10.0)
        state = {}
        policy.decide(fleet_view(now=0.0, active=3, outstanding=0), state)
        policy.decide(fleet_view(now=8.0, active=3, outstanding=9), state)
        # The quiet clock restarted: 9 s later is not enough on its own.
        assert policy.decide(fleet_view(now=9.0, active=3, outstanding=0),
                             state) == 3

    def test_never_scales_below_min(self):
        policy = queue_depth_autoscaler(hold_s=0.0)
        view = fleet_view(active=2, min_replicas=2, outstanding=0)
        assert policy.decide(view, {}) == 2

    def test_threshold_ordering_validated(self):
        with pytest.raises(ValueError, match="scale_down_queue"):
            queue_depth_autoscaler(scale_up_queue=1.0, scale_down_queue=2.0)


class TestUtilisationTarget:
    def test_scales_out_above_headroom(self):
        policy = utilisation_target_autoscaler(target=0.75, headroom=0.10)
        assert policy.decide(fleet_view(active=2, utilisation=0.9), {}) == 3

    def test_holds_near_target(self):
        policy = utilisation_target_autoscaler(target=0.75, headroom=0.10)
        assert policy.decide(fleet_view(active=2, utilisation=0.8), {}) == 2

    def test_scale_in_with_hysteresis(self):
        policy = utilisation_target_autoscaler(target=0.75, scale_in_factor=0.5,
                                               hold_s=15.0)
        state = {}
        idle = lambda now: fleet_view(now=now, active=4, utilisation=0.1)  # noqa: E731
        assert policy.decide(idle(0.0), state) == 4
        assert policy.decide(idle(14.0), state) == 4
        assert policy.decide(idle(15.0), state) == 3

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            utilisation_target_autoscaler(target=0.0)
        with pytest.raises(ValueError):
            utilisation_target_autoscaler(scale_in_factor=1.0)


class TestCustomPolicy:
    def test_custom_autoscaler_round_trip(self):
        """A user-registered policy drives a cluster without touching core."""
        from repro.core.designs import tpuv4i_baseline
        from repro.serving.cluster import ClusterSimulator
        from repro.serving.simulator import ServingSimulator
        from repro.serving.trace import generate_trace
        from repro.workloads.chat import RequestClass
        from repro.workloads.llm import LLMConfig

        policy = AutoscalerPolicy(
            name="test-half-fleet",
            description="always run exactly half the configured fleet",
            decide=lambda view, state: view.fleet_size // 2,
            cold_start_s=0.0)
        register_autoscaler(policy)
        try:
            model = LLMConfig(name="scaler-test-llm", num_layers=2, num_heads=8,
                              d_model=1024, d_ff=4096, vocab_size=32000)
            trace = generate_trace(
                "poisson", (RequestClass(input_tokens=64, output_tokens=8),),
                20.0, 30, 5)
            replicas = [ServingSimulator(model, tpuv4i_baseline())
                        for _ in range(4)]
            report = ClusterSimulator(replicas,
                                      autoscaler="test-half-fleet").run(trace)
            assert report.autoscaler == "test-half-fleet"
            assert report.peak_active_replicas == 2
            assert report.replicas[2].requests_routed == 0
            assert report.replicas[3].requests_routed == 0
            assert report.completed == 30
        finally:
            del AUTOSCALER_REGISTRY["test-half-fleet"]
