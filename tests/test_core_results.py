"""Tests for the result containers."""

import pytest

from repro.core.results import GraphResult, InferenceResult, OperatorResult, StageResult
from repro.hw.energy import EnergyBudget
from repro.workloads.operators import LayerCategory, MatMulOp


def make_operator_result(name="op", category=LayerCategory.QKV_GEN, seconds=1.0,
                         mxu_energy=2.0):
    operator = MatMulOp(name=name, category=category, m=4, k=4, n=4)
    energy = EnergyBudget()
    energy.add_dynamic("mxu", mxu_energy)
    return OperatorResult(operator=operator, cycles=seconds * 1e9, seconds=seconds,
                          energy=energy, unit="mxu", bound="compute", utilization=0.5)


class TestGraphResult:
    def make_graph_result(self):
        result = GraphResult(name="layer", tpu_name="baseline")
        result.operator_results.append(make_operator_result("qkv", LayerCategory.QKV_GEN, 1.0, 2.0))
        result.operator_results.append(make_operator_result("attn", LayerCategory.ATTENTION, 3.0, 1.0))
        return result

    def test_totals(self):
        result = self.make_graph_result()
        assert result.total_seconds == pytest.approx(4.0)
        assert result.mxu_energy == pytest.approx(3.0)

    def test_latency_by_category(self):
        breakdown = self.make_graph_result().latency_by_category()
        assert breakdown[LayerCategory.QKV_GEN] == pytest.approx(1.0)
        assert breakdown[LayerCategory.ATTENTION] == pytest.approx(3.0)

    def test_latency_fraction(self):
        result = self.make_graph_result()
        assert result.latency_fraction(LayerCategory.ATTENTION) == pytest.approx(0.75)
        assert result.latency_fraction(LayerCategory.GELU) == 0.0

    def test_category_fractions_sum_to_one(self):
        fractions = self.make_graph_result().category_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_idle_energy_added_to_total(self):
        result = self.make_graph_result()
        result.idle_energy.add_leakage("mxu", 5.0)
        assert result.mxu_energy == pytest.approx(8.0)

    def test_energy_by_category(self):
        breakdown = self.make_graph_result().mxu_energy_by_category()
        assert breakdown[LayerCategory.QKV_GEN] == pytest.approx(2.0)


class TestStageAndInference:
    def make_inference(self, scale=1.0):
        graph = GraphResult(name="layer", tpu_name="chip")
        graph.operator_results.append(make_operator_result(seconds=0.5 * scale, mxu_energy=1.0 * scale))
        result = InferenceResult(model_name="m", tpu_name="chip", items=100.0, item_unit="token")
        result.stages.append(StageResult(name="prefill", graph=graph, repeat=2.0))
        result.stages.append(StageResult(name="decode", graph=graph, repeat=4.0))
        return result

    def test_stage_scaling(self):
        result = self.make_inference()
        assert result.stage("prefill").seconds == pytest.approx(1.0)
        assert result.stage("decode").seconds == pytest.approx(2.0)

    def test_totals_and_throughput(self):
        result = self.make_inference()
        assert result.total_seconds == pytest.approx(3.0)
        assert result.mxu_energy == pytest.approx(6.0)
        assert result.throughput == pytest.approx(100.0 / 3.0)

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            self.make_inference().stage("sampling")

    def test_speedup_and_energy_reduction(self):
        fast = self.make_inference(scale=1.0)
        slow = self.make_inference(scale=2.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert fast.mxu_energy_reduction_over(slow) == pytest.approx(2.0)

    def test_stage_repeat_validation(self):
        graph = GraphResult(name="g", tpu_name="chip")
        with pytest.raises(ValueError):
            StageResult(name="bad", graph=graph, repeat=0.0)
