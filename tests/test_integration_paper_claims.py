"""Integration tests checking the paper's headline claims end to end.

These tests run the actual evaluation configurations of the paper (GPT-3-30B
layer at batch 8, DiT-XL/2 block at 512×512) on the baseline TPUv4i model and
on the CIM-based TPU and assert the *direction and rough magnitude* of every
headline result.  Exact numbers are recorded in EXPERIMENTS.md; here we pin
the behaviour so a regression in any substrate is caught.
"""

import pytest

from repro.analysis.breakdown import overall_comparison
from repro.cim.energy import compare_mxus
from repro.core.designs import cim_tpu_default, design_a, design_b, make_cim_tpu, tpuv4i_baseline
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.core.tpu import TPUModel
from repro.parallel.multi_device import MultiTPUSystem
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import GPT3_30B
from repro.workloads.operators import LayerCategory


@pytest.fixture(scope="module")
def settings():
    return LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                decode_kv_samples=2)


@pytest.fixture(scope="module")
def dit_settings():
    return DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=10)


@pytest.fixture(scope="module")
def baseline_sim():
    return InferenceSimulator(tpuv4i_baseline())


@pytest.fixture(scope="module")
def cim_sim():
    return InferenceSimulator(cim_tpu_default())


class TestTableII:
    def test_mxu_comparison(self, baseline_simulator, cim_simulator):
        comparison = compare_mxus(TPUModel(tpuv4i_baseline()).mxu, TPUModel(cim_tpu_default()).mxu)
        assert comparison["digital_macs_per_cycle"] == comparison["cim_macs_per_cycle"] == 16384
        assert comparison["energy_efficiency_gain"] == pytest.approx(9.43, rel=0.02)
        assert comparison["area_efficiency_gain"] == pytest.approx(2.02, rel=0.02)
        # §IV-A: same peak performance with only ~50 % of the area.
        assert comparison["cim_area_ratio"] == pytest.approx(0.5, abs=0.1)


class TestFig6LLMPrefill:
    def test_latency_roughly_equal(self, baseline_sim, cim_sim, settings):
        base = baseline_sim.simulate_llm_prefill_layer(GPT3_30B, settings)
        cim = cim_sim.simulate_llm_prefill_layer(GPT3_30B, settings)
        change = overall_comparison(base, cim)["latency_change_percent"]
        # Paper: +2.43 %; we accept anything within ±10 %.
        assert abs(change) < 10.0

    def test_energy_reduction_near_9x(self, baseline_sim, cim_sim, settings):
        base = baseline_sim.simulate_llm_prefill_layer(GPT3_30B, settings)
        cim = cim_sim.simulate_llm_prefill_layer(GPT3_30B, settings)
        factor = overall_comparison(base, cim)["mxu_energy_reduction_factor"]
        # Paper: 9.21×.
        assert 7.0 < factor < 12.0

    def test_gemm_layers_dominate_prefill(self, baseline_sim, settings):
        base = baseline_sim.simulate_llm_prefill_layer(GPT3_30B, settings)
        gemm_fraction = sum(base.latency_fraction(c) for c in (
            LayerCategory.QKV_GEN, LayerCategory.PROJECTION, LayerCategory.FFN1,
            LayerCategory.FFN2))
        # Paper: 84.9 %.
        assert gemm_fraction > 0.75

    def test_prefill_is_compute_bound(self, baseline_sim, settings):
        base = baseline_sim.simulate_llm_prefill_layer(GPT3_30B, settings)
        matmul_results = [r for r in base.operator_results if r.unit == "mxu"]
        compute_bound = [r for r in matmul_results if r.bound == "compute"]
        assert len(compute_bound) >= len(matmul_results) - 2


class TestFig6LLMDecode:
    def test_latency_reduction_around_30_percent(self, baseline_sim, cim_sim, settings):
        base = baseline_sim.simulate_llm_decode_layer(GPT3_30B, settings)
        cim = cim_sim.simulate_llm_decode_layer(GPT3_30B, settings)
        change = overall_comparison(base, cim)["latency_change_percent"]
        # Paper: −29.9 %; accept a −20 % to −50 % window.
        assert -50.0 < change < -20.0

    def test_energy_reduction_above_prefill(self, baseline_sim, cim_sim, settings):
        prefill_factor = overall_comparison(
            baseline_sim.simulate_llm_prefill_layer(GPT3_30B, settings),
            cim_sim.simulate_llm_prefill_layer(GPT3_30B, settings))["mxu_energy_reduction_factor"]
        decode_factor = overall_comparison(
            baseline_sim.simulate_llm_decode_layer(GPT3_30B, settings),
            cim_sim.simulate_llm_decode_layer(GPT3_30B, settings))["mxu_energy_reduction_factor"]
        # Paper: 13.4× for decode vs 9.21× for prefill.
        assert decode_factor > prefill_factor
        assert 10.0 < decode_factor < 20.0

    def test_attention_is_about_a_third_of_baseline_decode(self, baseline_sim, settings):
        base = baseline_sim.simulate_llm_decode_layer(GPT3_30B, settings)
        # Paper: 33.7 %.
        assert 0.25 < base.latency_fraction(LayerCategory.ATTENTION) < 0.50

    def test_gemv_attention_layers_accelerated(self, baseline_sim, cim_sim, settings):
        base = baseline_sim.simulate_llm_decode_layer(GPT3_30B, settings)
        cim = cim_sim.simulate_llm_decode_layer(GPT3_30B, settings)
        base_attn = base.latency_by_category()[LayerCategory.ATTENTION]
        cim_attn = cim.latency_by_category()[LayerCategory.ATTENTION]
        # Paper: 72.7 % reduction on the attention GEMV layers.
        assert (base_attn - cim_attn) / base_attn > 0.5


class TestFig6DiT:
    def test_latency_reduction_modest(self, baseline_sim, cim_sim, dit_settings):
        base = baseline_sim.simulate_dit_block(DIT_XL_2, dit_settings)
        cim = cim_sim.simulate_dit_block(DIT_XL_2, dit_settings)
        change = overall_comparison(base, cim)["latency_change_percent"]
        # Paper: −6.67 %; accept −20 % to +5 %.
        assert -20.0 < change < 5.0

    def test_energy_reduction_around_10x(self, baseline_sim, cim_sim, dit_settings):
        base = baseline_sim.simulate_dit_block(DIT_XL_2, dit_settings)
        cim = cim_sim.simulate_dit_block(DIT_XL_2, dit_settings)
        factor = overall_comparison(base, cim)["mxu_energy_reduction_factor"]
        # Paper: 10.4×.
        assert 7.0 < factor < 14.0

    def test_attention_and_gemm_are_the_bottlenecks(self, baseline_sim, dit_settings):
        base = baseline_sim.simulate_dit_block(DIT_XL_2, dit_settings)
        attention = base.latency_fraction(LayerCategory.ATTENTION)
        gemm = sum(base.latency_fraction(c) for c in (
            LayerCategory.QKV_GEN, LayerCategory.PROJECTION, LayerCategory.FFN1,
            LayerCategory.FFN2))
        # Paper: Softmax 36.9 % (inside Attention here) and GEMM 35.65 %.
        assert attention > 0.25
        assert gemm > 0.25


class TestFig7Exploration:
    def test_smaller_cim_mxus_save_more_energy_on_llm(self, settings):
        baseline = InferenceSimulator(tpuv4i_baseline()).simulate_llm_inference(GPT3_30B, settings)
        small = InferenceSimulator(make_cim_tpu(2, 8, 8)).simulate_llm_inference(GPT3_30B, settings)
        default = InferenceSimulator(cim_tpu_default()).simulate_llm_inference(GPT3_30B, settings)
        assert baseline.mxu_energy / small.mxu_energy > baseline.mxu_energy / default.mxu_energy

    def test_llm_latency_insensitive_to_peak_throughput(self, settings):
        # Memory-bound decode: quadrupling the CIM-MXU peak gives only a small
        # latency improvement (paper: 2.5 % between 8×16×8 and 8×16×16).
        medium = InferenceSimulator(make_cim_tpu(8, 16, 8)).simulate_llm_inference(GPT3_30B, settings)
        large = InferenceSimulator(make_cim_tpu(8, 16, 16)).simulate_llm_inference(GPT3_30B, settings)
        improvement = (medium.total_seconds - large.total_seconds) / medium.total_seconds
        assert improvement < 0.10
        assert large.mxu_energy > medium.mxu_energy

    def test_dit_latency_scales_with_peak_throughput(self, dit_settings):
        # Compute-bound DiT: more/larger CIM-MXUs reduce latency (paper: −33.8 %
        # for 8×16×16) while small configurations slow it down (paper: +100 %).
        baseline = InferenceSimulator(tpuv4i_baseline()).simulate_dit_inference(DIT_XL_2, dit_settings)
        small = InferenceSimulator(make_cim_tpu(2, 8, 8)).simulate_dit_inference(DIT_XL_2, dit_settings)
        large = InferenceSimulator(make_cim_tpu(8, 16, 16)).simulate_dit_inference(DIT_XL_2, dit_settings)
        assert small.total_seconds > baseline.total_seconds
        assert large.total_seconds < baseline.total_seconds

    def test_design_b_faster_than_design_a_for_dit(self, dit_settings):
        a = InferenceSimulator(design_a()).simulate_dit_inference(DIT_XL_2, dit_settings)
        b = InferenceSimulator(design_b()).simulate_dit_inference(DIT_XL_2, dit_settings)
        assert b.total_seconds < a.total_seconds


class TestFig8MultiDevice:
    def test_design_a_improves_llm_throughput_over_baseline(self, settings):
        base = [MultiTPUSystem(tpuv4i_baseline(), n).simulate_llm(GPT3_30B, settings).throughput
                for n in (1, 2, 4)]
        design = [MultiTPUSystem(design_a(), n).simulate_llm(GPT3_30B, settings).throughput
                  for n in (1, 2, 4)]
        # Paper: ~28 % average speedup for Design A.
        speedups = [d / b for d, b in zip(design, base)]
        assert all(s > 1.0 for s in speedups)

    def test_design_b_improves_dit_throughput_over_baseline(self, dit_settings):
        base = MultiTPUSystem(tpuv4i_baseline(), 4).simulate_dit(DIT_XL_2, dit_settings)
        design = MultiTPUSystem(design_b(), 4).simulate_dit(DIT_XL_2, dit_settings)
        # Paper: ~33 % throughput improvement for Design B.
        assert design.throughput / base.throughput > 1.1

    def test_design_a_multi_device_energy_reduction(self, settings):
        base = MultiTPUSystem(tpuv4i_baseline(), 4).simulate_llm(GPT3_30B, settings)
        design = MultiTPUSystem(design_a(), 4).simulate_llm(GPT3_30B, settings)
        # Paper: 24.2× MXU energy reduction for Design A.
        assert base.mxu_energy_joules / design.mxu_energy_joules > 10.0

    def test_throughput_scales_with_device_count(self, settings):
        results = [MultiTPUSystem(design_a(), n).simulate_llm(GPT3_30B, settings).throughput
                   for n in (1, 2, 4)]
        assert results[2] > results[1] > results[0]
