"""Sharded serving replay: split at quiescence, merge bit-for-bit.

The sharded path cuts the trace at quiescence boundaries (instants where
the deployment is empty and idle), replays the pieces independently and
merges the per-shard accounting.  Because each boundary is a true
renewal point of the event loop, the merged report must equal the serial
one **bit for bit** — same floats, same quantiles, same step counts —
for any shard count, worker count, or metric-collection mode.  These
tests pin that contract; the property tests are derandomized so CI replays
the same examples every run.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.designs import design_a
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import generate_trace
from repro.workloads.chat import DEFAULT_REQUEST_MIX
from repro.workloads.llm import GPT3_30B

SLO_SPEC = SLO(ttft_s=1.0, tpot_s=0.1)


def _run(trace, **kwargs):
    """One fresh-engine replay (fresh so cache counters match too)."""
    simulator = ServingSimulator(GPT3_30B, design_a())
    return simulator.run(trace, slo=SLO_SPEC, **kwargs)


class TestShardEquality:
    @settings(derandomize=True, deadline=None, max_examples=12)
    @given(shards=st.integers(min_value=2, max_value=12),
           rate=st.sampled_from([0.02, 0.05, 0.5, 8.0]),
           seed=st.integers(min_value=0, max_value=3))
    def test_sharded_equals_serial_bit_for_bit(self, shards, rate, seed):
        """Any shard count reproduces the serial report exactly."""
        trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, rate, 120, seed)
        serial = _run(trace)
        sharded = _run(trace, shards=shards)
        assert sharded.to_dict() == serial.to_dict()

    @settings(derandomize=True, deadline=None, max_examples=8)
    @given(shards=st.integers(min_value=2, max_value=8),
           rate=st.sampled_from([0.02, 0.5]))
    def test_aggregate_only_matches_collected(self, shards, rate):
        """collect_requests=False drops rows but changes no aggregate."""
        trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, rate, 100, 1)
        collected = _run(trace, shards=shards)
        aggregate = _run(trace, shards=shards, collect_requests=False)
        assert aggregate.requests == ()
        assert (aggregate.to_dict(include_requests=False)
                == collected.to_dict(include_requests=False))

    def test_worker_processes_match_in_process_merge(self):
        """Forcing worker processes changes nothing about the report."""
        trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, 0.05, 60, 2)
        serial = _run(trace)
        forked = _run(trace, shards=4, shard_workers=2)
        assert forked.to_dict() == serial.to_dict()

    def test_warm_engine_reshard_matches_outcome(self):
        """Re-running sharded on a warm engine: same simulated outcome.

        Cache counters are cumulative on the engine, so only the
        bookkeeping fields may differ between a warm and a cold replay.
        """
        trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, 0.5, 120, 3)
        simulator = ServingSimulator(GPT3_30B, design_a())
        serial = simulator.run(trace, slo=SLO_SPEC)
        warm = simulator.run(trace, slo=SLO_SPEC, shards=6)
        cold = _run(trace, shards=6)
        for report in (warm, cold):
            payload = report.to_dict()
            expected = serial.to_dict()
            for key in ("cost_cache_hits", "cost_cache_misses",
                        "cost_cache_hit_rate"):
                payload.pop(key)
                expected.pop(key)
            assert payload == expected

    def test_more_shards_than_quiescent_segments(self):
        """Asking for more shards than boundaries degrades gracefully."""
        # Rate 32 on 80 requests saturates instantly: the queue never
        # drains mid-trace, so there is exactly one segment.
        trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, 32.0, 80, 5)
        serial = _run(trace)
        sharded = _run(trace, shards=16)
        assert sharded.to_dict() == serial.to_dict()

    def test_single_shard_is_the_serial_path(self):
        trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, 0.05, 50, 0)
        assert _run(trace, shards=1).to_dict() == _run(trace).to_dict()

    def test_invalid_shard_counts_raise(self):
        trace = generate_trace("poisson", DEFAULT_REQUEST_MIX, 0.05, 10, 0)
        simulator = ServingSimulator(GPT3_30B, design_a())
        for bad in (0, -2):
            try:
                simulator.run(trace, shards=bad)
            except ValueError:
                continue
            raise AssertionError(f"shards={bad} should raise")
