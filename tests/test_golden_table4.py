"""Golden regression tests for the Table IV / Fig. 7 exploration.

The expected values live in ``tests/golden/table_iv.json`` and were produced
by the explorer at the paper's evaluation settings (GPT-3-30B with batch 8,
1024 input / 512 output tokens; DiT-XL/2 at 512×512 with 50 sampling steps;
INT8).  Any refactor of the simulator, the mapping engine or the sweep
subsystem that shifts these numbers — latencies, MXU energies, the relative
ratios, or which design the trade-off rule selects — fails here first, which
is what lets the rest of the codebase move fast.

If a change *intentionally* alters the model's numbers, regenerate the golden
file with ``PYTHONPATH=src python tests/golden/regenerate.py`` and justify the
drift in the commit message.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.explorer import ArchitectureExplorer
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "table_iv.json"

#: Relative tolerance of the float comparisons.  Tight enough to catch any
#: genuine modelling drift, loose enough to absorb platform-level float noise
#: (there should be none: the model is pure Python arithmetic).
RTOL = 1e-9


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def explorer():
    return ArchitectureExplorer(
        llm_settings=LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                          decode_kv_samples=4),
        dit_settings=DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50))


@pytest.fixture(scope="module")
def rows(explorer):
    return explorer.explore()


class TestGoldenRows:
    def test_row_set_matches(self, golden, rows):
        expected = {(row["design"], row["workload"]) for row in golden["rows"]}
        actual = {(row.design, row.workload) for row in rows}
        assert actual == expected
        assert len(rows) == len(golden["rows"])

    def test_every_row_value_pinned(self, golden, rows):
        actual = {(row.design, row.workload): row for row in rows}
        for expected in golden["rows"]:
            row = actual[(expected["design"], expected["workload"])]
            for field in ("peak_tops", "latency_seconds", "mxu_energy_joules",
                          "latency_vs_baseline", "energy_saving_vs_baseline"):
                assert getattr(row, field) == pytest.approx(expected[field], rel=RTOL), (
                    f"{expected['design']}/{expected['workload']}: {field} drifted "
                    f"from the golden value {expected[field]!r}")


class TestGoldenSelections:
    @pytest.mark.parametrize("workload", ["llm", "dit"])
    def test_best_design_selection_pinned(self, golden, explorer, rows, workload):
        expected = golden["best_design"][workload]
        best = explorer.best_design(rows, workload, max_latency_increase=0.25)
        assert best.design == expected["design"]
        assert best.latency_vs_baseline == pytest.approx(
            expected["latency_vs_baseline"], rel=RTOL)
        assert best.energy_saving_vs_baseline == pytest.approx(
            expected["energy_saving_vs_baseline"], rel=RTOL)

    def test_selected_designs_bracket_paper_trends(self, golden):
        """The LLM pick trades latency for energy; the DiT pick is fast."""
        llm = golden["best_design"]["llm"]
        dit = golden["best_design"]["dit"]
        assert llm["energy_saving_vs_baseline"] > dit["energy_saving_vs_baseline"]
        assert dit["latency_vs_baseline"] < 1.0
