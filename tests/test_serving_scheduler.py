"""Tests for the continuous-batching engine and its scheduler policies."""

import pytest

from repro.core.designs import design_a, tpuv4i_baseline
from repro.serving.metrics import SLO
from repro.serving.scheduler import (
    SCHEDULER_REGISTRY,
    SchedulerPolicy,
    get_scheduler,
    register_scheduler,
)
from repro.serving.simulator import ServingSimulator, simulate_serving
from repro.serving.spec import ServingSpec
from repro.serving.trace import Request, generate_trace
from repro.sweep.cache import CachingInferenceSimulator
from repro.workloads.chat import RequestClass
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import LLAMA2_7B, LLMConfig
from repro.workloads.scenario import LLMInferenceSettings

#: Small but non-trivial model: weights take a visible bite out of one HBM.
SERVE_LLM = LLMConfig(name="serve-test-llm", num_layers=4, num_heads=16,
                      d_model=2048, d_ff=8192, vocab_size=32000)

MIX = (RequestClass(input_tokens=64, output_tokens=32, weight=0.6),
       RequestClass(input_tokens=256, output_tokens=64, weight=0.4))


def make_trace(num_requests=60, rate=50.0, seed=7, kind="poisson"):
    return generate_trace(kind, MIX, rate, num_requests, seed)


@pytest.fixture(scope="module")
def report():
    simulator = ServingSimulator(SERVE_LLM, tpuv4i_baseline())
    return simulator.run(make_trace(), slo=SLO(ttft_s=0.5, tpot_s=0.05))


class TestRegistry:
    def test_builtin_policies_registered(self):
        for name in ("fcfs", "shortest-prompt-first", "decode-priority"):
            assert get_scheduler(name).name == name

    def test_unknown_scheduler_lists_registered(self):
        with pytest.raises(KeyError, match="fcfs"):
            get_scheduler("round-robin")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler(SCHEDULER_REGISTRY["fcfs"])

    def test_custom_policy_round_trip(self):
        policy = SchedulerPolicy(name="test-longest-prompt-first",
                                 description="adversarial ordering",
                                 priority=lambda live: (-live.request.input_tokens,
                                                        live.request.request_id))
        register_scheduler(policy)
        try:
            report = ServingSimulator(SERVE_LLM, tpuv4i_baseline(),
                                      scheduler="test-longest-prompt-first").run(
                make_trace(num_requests=20))
            assert report.completed == 20
        finally:
            del SCHEDULER_REGISTRY["test-longest-prompt-first"]


class TestConservation:
    def test_every_request_completes(self, report):
        assert report.completed == report.num_requests == 60
        assert report.rejected == 0

    def test_token_conservation(self, report):
        trace = make_trace()
        assert report.total_tokens == sum(r.output_tokens for r in trace)
        finished = {m.request_id: m for m in report.requests}
        assert set(finished) == {r.request_id for r in trace}

    def test_timeline_ordering(self, report):
        for metrics in report.requests:
            assert metrics.arrival_s <= metrics.first_token_s <= metrics.finish_s
            assert metrics.ttft_s >= 0 and metrics.e2e_s >= metrics.ttft_s

    def test_busy_time_within_makespan(self, report):
        assert 0 < report.busy_s <= report.makespan_s
        assert 0 < report.utilisation <= 1.0

    def test_makespan_measured_from_first_arrival(self):
        """Regression: a trace with offset timestamps (e.g. a production
        excerpt not re-based to zero) must report the same throughput and
        utilisation as its re-based twin."""
        offset = 1000.0
        based = make_trace(num_requests=20)
        shifted = tuple(Request(request_id=r.request_id,
                                arrival_s=r.arrival_s + offset,
                                input_tokens=r.input_tokens,
                                output_tokens=r.output_tokens) for r in based)
        a = ServingSimulator(SERVE_LLM, tpuv4i_baseline()).run(based)
        b = ServingSimulator(SERVE_LLM, tpuv4i_baseline()).run(shifted)
        assert b.makespan_s == pytest.approx(a.makespan_s)
        assert b.tokens_per_second == pytest.approx(a.tokens_per_second)
        assert b.utilisation == pytest.approx(a.utilisation)

    def test_energy_positive(self, report):
        assert report.mxu_energy_joules > 0
        assert report.total_energy_joules >= report.mxu_energy_joules
        assert report.energy_per_token_joules > 0


class TestDeterminismAndCaching:
    def test_bit_identical_reruns(self):
        runs = [ServingSimulator(SERVE_LLM, tpuv4i_baseline()).run(make_trace())
                for _ in range(2)]
        assert runs[0].to_dict() == runs[1].to_dict()

    def test_step_costs_are_memoised(self, report):
        # Far more steps than distinct (phase, batch, bucket) states.
        assert report.cost_cache_misses < report.prefill_steps + report.decode_steps
        assert report.cost_cache_hit_rate > 0.3

    def test_shared_graph_cache_skips_resimulation(self):
        cache_sim = CachingInferenceSimulator(tpuv4i_baseline())
        ServingSimulator(SERVE_LLM, tpuv4i_baseline(), simulator=cache_sim).run(make_trace())
        misses_after_first = cache_sim.cache.stats.misses
        ServingSimulator(SERVE_LLM, tpuv4i_baseline(), simulator=cache_sim).run(make_trace())
        assert cache_sim.cache.stats.misses == misses_after_first


class TestAdmissionControl:
    def test_peak_reservation_never_exceeds_budget(self, report):
        assert 0 < report.peak_kv_reserved_bytes <= report.kv_budget_bytes

    def test_tight_memory_limits_concurrency(self):
        # Max batch 2: at most two requests' full-context KV ever reserved.
        simulator = ServingSimulator(SERVE_LLM, tpuv4i_baseline(), max_batch=2)
        report = simulator.run(make_trace(num_requests=20))
        per_token = SERVE_LLM.kv_cache_bytes(1, 1)
        assert report.peak_kv_reserved_bytes <= 2 * 320 * per_token

    def test_oversized_requests_are_rejected(self):
        trace = (Request(request_id=0, arrival_s=0.0, input_tokens=64,
                         output_tokens=16),
                 Request(request_id=1, arrival_s=0.0, input_tokens=10_000_000,
                         output_tokens=16))
        report = ServingSimulator(SERVE_LLM, tpuv4i_baseline(), devices=1).run(trace)
        assert report.rejected == 1
        assert report.completed == 1

    def test_model_that_cannot_fit_raises(self):
        from repro.workloads.llm import GPT3_30B

        # GPT-3-30B weighs ~30 GB INT8: one 8 GB device leaves no KV budget.
        with pytest.raises(ValueError, match="does not fit"):
            ServingSimulator(GPT3_30B, tpuv4i_baseline(), devices=1).run(
                (Request(request_id=0, arrival_s=0.0, input_tokens=64,
                         output_tokens=16),))

    def test_auto_deployment_admits_largest_request(self):
        trace = make_trace(num_requests=10)
        simulator = ServingSimulator(LLAMA2_7B, tpuv4i_baseline())
        devices = simulator.plan_devices(trace)
        largest = max(r.total_tokens for r in trace) * simulator.kv_bytes_per_token
        assert simulator.kv_budget(devices) >= largest
        assert devices == 1 or simulator.kv_budget(devices - 1) < largest


class TestPolicies:
    def test_shortest_prompt_first_beats_fcfs_short_request_ttft(self):
        # Overload with a long-prompt head so ordering matters.
        trace = make_trace(num_requests=80, rate=200.0, kind="bursty")
        reports = {name: ServingSimulator(SERVE_LLM, tpuv4i_baseline(),
                                          scheduler=name).run(trace)
                   for name in ("fcfs", "shortest-prompt-first")}
        mean_short_ttft = {}
        for name, report in reports.items():
            short = [m.ttft_s for m in report.requests if m.input_tokens == 64]
            mean_short_ttft[name] = sum(short) / len(short)
        assert mean_short_ttft["shortest-prompt-first"] < mean_short_ttft["fcfs"]

    def test_decode_priority_never_interrupts_waves(self):
        trace = make_trace(num_requests=40, rate=200.0)
        report = ServingSimulator(SERVE_LLM, tpuv4i_baseline(),
                                  scheduler="decode-priority").run(trace)
        # Wave batching: far fewer prefill groups than continuous admission.
        fcfs = ServingSimulator(SERVE_LLM, tpuv4i_baseline()).run(trace)
        assert report.completed == fcfs.completed == 40
        assert report.prefill_steps <= fcfs.prefill_steps

    def test_policies_differ_on_contended_traces(self):
        trace = make_trace(num_requests=60, rate=200.0, kind="bursty")
        digests = {name: ServingSimulator(SERVE_LLM, tpuv4i_baseline(),
                                          scheduler=name).run(trace).e2e
                   for name in sorted(SCHEDULER_REGISTRY)}
        assert len(set(digests.values())) > 1


class TestValidation:
    def test_rejects_non_llm_model(self):
        with pytest.raises(ValueError, match="LLM"):
            ServingSimulator(DIT_XL_2, tpuv4i_baseline())

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="non-empty"):
            ServingSimulator(SERVE_LLM, tpuv4i_baseline()).run(())

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ServingSimulator(SERVE_LLM, tpuv4i_baseline(), max_batch=0)
        with pytest.raises(ValueError):
            ServingSimulator(SERVE_LLM, tpuv4i_baseline(), devices=-1)
        with pytest.raises(ValueError):
            ServingSimulator(SERVE_LLM, tpuv4i_baseline(), bucket_tokens=0)


class TestSimulateServing:
    def test_spec_end_to_end_on_design(self):
        spec = ServingSpec(scheduler="fcfs", trace="poisson", arrival_rate=20.0,
                           num_requests=30, seed=11)
        settings = LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16)
        report = simulate_serving(SERVE_LLM, design_a(), spec, settings)
        assert report.completed == 30
        assert report.scheduler == "fcfs"
        assert report.tokens_per_second > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ServingSpec(arrival_rate=0.0)
        with pytest.raises(ValueError):
            ServingSpec(num_requests=-1)
        with pytest.raises(ValueError):
            ServingSpec(memory_utilisation=1.5)
