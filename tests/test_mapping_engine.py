"""Tests for the mapping engine."""

import pytest

from repro.cim.mxu import CIMMXU
from repro.mapping.engine import MappingEngine, MappingObjective
from repro.mapping.mapspace import PartitionDim
from repro.mapping.schedule import ScheduleOptions
from repro.memory.hierarchy import MemoryHierarchy
from repro.systolic.systolic_array import DigitalMXU
from repro.vector.vpu import VectorUnit
from repro.workloads.operators import LayerCategory, MatMulOp, OperandSource


def make_engine(mxu=None, schedule=None, objective=MappingObjective.LATENCY):
    return MappingEngine(
        mxu_template=mxu if mxu is not None else DigitalMXU(),
        mxu_count=4,
        hierarchy=MemoryHierarchy(),
        vpu=VectorUnit(),
        schedule=schedule if schedule is not None else ScheduleOptions(),
        objective=objective,
    )


def make_matmul(m, k, n, batch=1, stationary=True, weight_source=OperandSource.HBM):
    return MatMulOp(name="op", category=LayerCategory.QKV_GEN, m=m, k=k, n=n, batch=batch,
                    stationary_weights=stationary, weight_source=weight_source)


class TestMapMatmul:
    def test_best_mapping_is_minimum_latency(self):
        engine = make_engine()
        op = make_matmul(4096, 4096, 4096)
        best = engine.map_matmul(op)
        all_mappings = engine.evaluate_all(op)
        assert best.total_cycles == min(m.total_cycles for m in all_mappings)

    def test_large_prefill_gemm_is_compute_bound(self):
        engine = make_engine()
        mapping = engine.map_matmul(make_matmul(8192, 7168, 21504))
        assert mapping.bound == "compute"

    def test_decode_gemv_is_memory_bound_on_cim(self):
        engine = make_engine(mxu=CIMMXU())
        mapping = engine.map_matmul(make_matmul(8, 7168, 21504))
        assert mapping.bound == "memory"

    def test_batched_attention_uses_batch_partition(self):
        engine = make_engine()
        op = make_matmul(1024, 72, 1024, batch=128, stationary=False,
                         weight_source=OperandSource.CMEM)
        mapping = engine.map_matmul(op)
        assert mapping.candidate.partition is PartitionDim.BATCH

    def test_utilization_bounded(self):
        engine = make_engine()
        for shape in [(1, 7168, 7168), (8192, 7168, 7168), (64, 64, 64)]:
            mapping = engine.map_matmul(make_matmul(*shape))
            assert 0.0 <= mapping.utilization <= 1.0

    def test_energy_positive_and_has_mxu_component(self):
        engine = make_engine()
        mapping = engine.map_matmul(make_matmul(512, 1024, 1024))
        assert mapping.energy.component_total("mxu") > 0
        assert mapping.energy.total > 0

    def test_cmem_resident_weights_avoid_hbm(self):
        engine = make_engine()
        hbm_op = make_matmul(1, 7168, 7168, stationary=False, weight_source=OperandSource.HBM)
        cmem_op = make_matmul(1, 7168, 7168, stationary=False, weight_source=OperandSource.CMEM)
        hbm_mapping = engine.map_matmul(hbm_op)
        cmem_mapping = engine.map_matmul(cmem_op)
        assert cmem_mapping.weight_transfer_cycles < hbm_mapping.weight_transfer_cycles

    def test_double_buffering_reduces_latency_for_memory_heavy_op(self):
        buffered = make_engine(schedule=ScheduleOptions(double_buffering=True))
        serial = make_engine(schedule=ScheduleOptions(double_buffering=False))
        op = make_matmul(8, 7168, 21504)
        assert buffered.map_matmul(op).total_cycles < serial.map_matmul(op).total_cycles

    def test_k_partition_charges_reduction(self):
        engine = make_engine()
        op = make_matmul(1, 16384, 128)
        mappings = engine.evaluate_all(op)
        k_mapping = next(m for m in mappings if m.candidate.partition is PartitionDim.K)
        assert k_mapping.reduction_cycles > 0

    def test_energy_objective_changes_choice_criterion(self):
        latency_engine = make_engine(objective=MappingObjective.LATENCY)
        energy_engine = make_engine(objective=MappingObjective.ENERGY)
        op = make_matmul(2048, 2048, 2048)
        latency_best = latency_engine.map_matmul(op)
        energy_best = energy_engine.map_matmul(op)
        assert energy_best.energy.total <= latency_best.energy.total * (1 + 1e-9)

    def test_cim_engine_runs_all_shapes(self):
        engine = make_engine(mxu=CIMMXU())
        for shape, batch in [((8192, 1152, 3456), 1), ((1, 128, 1280), 448), ((8, 7168, 7168), 1)]:
            mapping = engine.map_matmul(make_matmul(*shape, batch=batch, stationary=batch == 1))
            assert mapping.total_cycles > 0

    def test_invalid_mxu_count_rejected(self):
        with pytest.raises(ValueError):
            MappingEngine(mxu_template=DigitalMXU(), mxu_count=0,
                          hierarchy=MemoryHierarchy(), vpu=VectorUnit())
