"""Tests for the LLM / DiT model configurations and whole-model graph builders."""

import pytest

from repro.common import Precision
from repro.workloads.dit import DIT_XL_2, DiTConfig, build_dit_block, build_dit_model_graph
from repro.workloads.llm import (
    GPT3_30B,
    GPT3_175B,
    LLAMA2_13B,
    LLMConfig,
    build_llm_layer,
    build_llm_model_graph,
)
from repro.workloads.operators import LayerCategory
from repro.workloads.registry import MODEL_REGISTRY, get_model, register_model


class TestLLMConfigs:
    def test_gpt3_30b_matches_table3(self):
        assert GPT3_30B.num_layers == 48
        assert GPT3_30B.num_heads == 56
        assert GPT3_30B.d_model == 7168

    def test_gpt3_30b_parameter_count(self):
        # Roughly 30 billion parameters.
        assert 25e9 < GPT3_30B.approximate_parameters < 35e9

    def test_gpt3_175b_parameter_count(self):
        assert 150e9 < GPT3_175B.approximate_parameters < 200e9

    def test_llama2_13b_parameter_count(self):
        assert 10e9 < LLAMA2_13B.approximate_parameters < 16e9

    def test_kv_cache_bytes(self):
        per_layer = 2 * 8 * 1024 * 7168  # 2 tensors × batch × tokens × d_model, INT8
        assert GPT3_30B.kv_cache_bytes(batch=8, seq_len=1024) == 48 * per_layer

    def test_layer_config_head_dim(self):
        assert GPT3_30B.layer_config().resolved_head_dim == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            LLMConfig(name="bad", num_layers=0, num_heads=1, d_model=64, d_ff=256)


class TestDiTConfigs:
    def test_dit_xl2_matches_table3(self):
        assert DIT_XL_2.depth == 28
        assert DIT_XL_2.num_heads == 16
        assert DIT_XL_2.d_model == 1152

    def test_tokens_for_512_resolution(self):
        assert DIT_XL_2.tokens_for_resolution(512) == 1024

    def test_tokens_for_256_resolution(self):
        assert DIT_XL_2.tokens_for_resolution(256) == 256

    def test_head_dim(self):
        assert DIT_XL_2.head_dim == 72

    def test_d_ff(self):
        assert DIT_XL_2.d_ff == 4 * 1152

    def test_validation(self):
        with pytest.raises(ValueError):
            DiTConfig(name="bad", depth=0, num_heads=4, d_model=128)
        with pytest.raises(ValueError):
            DIT_XL_2.tokens_for_resolution(-1)


class TestLLMGraphs:
    def test_stage_dispatch(self):
        prefill = build_llm_layer(GPT3_30B, "prefill", batch=1, seq_len=32)
        decode = build_llm_layer(GPT3_30B, "decode", batch=1, seq_len=32, kv_len=64)
        assert prefill.total_macs > decode.total_macs

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            build_llm_layer(GPT3_30B, "train", batch=1, seq_len=32)

    def test_model_graph_has_embedding_and_head(self, tiny_llm):
        graph = build_llm_model_graph(tiny_llm, "prefill", batch=1, seq_len=32)
        categories = {op.category for op in graph}
        assert LayerCategory.EMBEDDING in categories
        assert LayerCategory.PREDICTION_HEAD in categories

    def test_model_graph_layer_count(self, tiny_llm):
        layer = build_llm_layer(tiny_llm, "prefill", batch=1, seq_len=32)
        model = build_llm_model_graph(tiny_llm, "prefill", batch=1, seq_len=32)
        # embedding + layers + final LN + lm head
        assert len(model) == 1 + tiny_llm.num_layers * len(layer) + 2


class TestDiTGraphs:
    def test_block_contains_conditioning(self, tiny_dit):
        graph = build_dit_block(tiny_dit, batch=1, image_resolution=256)
        assert any(op.category is LayerCategory.CONDITIONING for op in graph)

    def test_block_attention_head_dim(self):
        graph = build_dit_block(DIT_XL_2, batch=1, image_resolution=512)
        qk = next(op for op in graph.matmul_operators
                  if op.category is LayerCategory.ATTENTION and op.k == 72)
        assert qk.m == 1024 and qk.n == 1024
        assert qk.batch == 16

    def test_model_graph_has_patchify_and_final_linear(self, tiny_dit):
        graph = build_dit_model_graph(tiny_dit, batch=1, image_resolution=256)
        assert any(op.category is LayerCategory.EMBEDDING for op in graph)
        assert any(op.category is LayerCategory.PREDICTION_HEAD for op in graph)

    def test_precision_propagates(self, tiny_dit):
        graph = build_dit_block(tiny_dit, batch=1, image_resolution=256,
                                precision=Precision.BF16)
        assert all(op.precision is Precision.BF16 for op in graph)

    def test_validation(self, tiny_dit):
        with pytest.raises(ValueError):
            build_dit_block(tiny_dit, batch=0)


class TestRegistry:
    def test_paper_models_registered(self):
        assert "gpt3-30b" in MODEL_REGISTRY
        assert "dit-xl-2" in MODEL_REGISTRY
        assert "llama2-13b" in MODEL_REGISTRY

    def test_get_model(self):
        assert get_model("gpt3-30b") is GPT3_30B

    def test_unknown_model_lists_options(self):
        with pytest.raises(KeyError, match="gpt3-30b"):
            get_model("gpt5")

    def test_register_and_overwrite(self):
        custom = LLMConfig(name="custom-test-model", num_layers=2, num_heads=2,
                           d_model=64, d_ff=256)
        register_model(custom)
        assert get_model("custom-test-model") is custom
        with pytest.raises(ValueError):
            register_model(custom)
        register_model(custom, overwrite=True)
        del MODEL_REGISTRY["custom-test-model"]
