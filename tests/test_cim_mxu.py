"""Tests for the CIM-MXU (grid of CIM cores) model."""

import pytest

from repro.cim.mxu import CIMMXU, CIMMXUConfig
from repro.common import Precision
from repro.systolic.systolic_array import DigitalMXU


@pytest.fixture(scope="module")
def mxu():
    return CIMMXU()


class TestConfig:
    def test_default_grid_matches_table1(self):
        config = CIMMXUConfig()
        assert config.grid_rows == 16 and config.grid_cols == 8
        assert config.core_count == 128
        assert config.macs_per_cycle == 16384

    def test_extents(self):
        config = CIMMXUConfig()
        assert config.k_extent == 16 * 128
        assert config.n_extent == 8 * 256

    def test_weight_capacity(self):
        config = CIMMXUConfig()
        assert config.weight_capacity_bytes == 128 * 128 * 256

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            CIMMXUConfig(grid_rows=0)


class TestTable2:
    def test_energy_efficiency_matches_paper(self, mxu):
        assert mxu.energy_efficiency_tops_per_watt() == pytest.approx(7.26, rel=0.01)

    def test_area_efficiency_matches_paper(self, mxu):
        assert mxu.area_efficiency_tops_per_mm2() == pytest.approx(1.31, rel=0.01)

    def test_same_macs_per_cycle_as_digital_mxu(self, mxu):
        assert mxu.macs_per_cycle == DigitalMXU().macs_per_cycle

    def test_half_the_area_of_digital_mxu(self, mxu):
        digital = DigitalMXU()
        assert mxu.area_mm2 / digital.area_mm2 == pytest.approx(0.5, abs=0.1)


class TestGemmCycles:
    def test_aligned_gemm_near_peak_utilization(self, mxu):
        result = mxu.gemm_cycles(4096, 2048, 2048)
        assert result.utilization > 0.9

    def test_cycles_lower_bounded_by_peak_throughput(self, mxu):
        result = mxu.gemm_cycles(512, 4096, 4096)
        ideal = 512 * 4096 * 4096 / mxu.macs_per_cycle
        assert result.total_cycles >= ideal

    def test_gemv_much_faster_than_digital_systolic(self, mxu):
        # The headline architectural effect: GEMV-shaped work does not pay the
        # systolic fill/drain traversal, so the CIM-MXU is far faster.
        digital = DigitalMXU()
        cim_cycles = mxu.gemm_cycles(1, 2048, 2048).total_cycles
        digital_cycles = digital.gemm(1, 2048, 2048, stationary_weights=False).cycles
        assert cim_cycles < digital_cycles / 3

    def test_partial_fold_costs_proportionally_less(self, mxu):
        full = mxu.gemm_cycles(64, 2048, 2048).total_cycles
        half_k = mxu.gemm_cycles(64, 1024, 2048).total_cycles
        assert half_k < full
        assert half_k == pytest.approx(full / 2, rel=0.1)

    def test_weight_update_overlap_reduces_cycles(self):
        overlapped = CIMMXU(config=CIMMXUConfig(overlap_weight_update=True))
        serialised = CIMMXU(config=CIMMXUConfig(overlap_weight_update=False))
        shape = (8, 4096, 4096)
        assert overlapped.gemm_cycles(*shape).total_cycles < serialised.gemm_cycles(*shape).total_cycles

    def test_resident_weights_skip_write_cycles(self, mxu):
        fresh = mxu.gemm_cycles(4, 2048, 2048, weights_resident=False)
        resident = mxu.gemm_cycles(4, 2048, 2048, weights_resident=True)
        assert resident.total_cycles <= fresh.total_cycles
        assert resident.weight_write_cycles == 0

    def test_invalid_dimensions_rejected(self, mxu):
        with pytest.raises(ValueError):
            mxu.gemm_cycles(0, 128, 128)
        with pytest.raises(ValueError):
            mxu.gemm_cycles(1, 128, 128, instances=0)


class TestInstancePacking:
    def test_small_instances_pack_onto_grid(self, mxu):
        # A 72×1024 attention operand needs 1 grid row and 4 grid columns, so
        # 16 × 2 = 32 instances fit concurrently.
        assert mxu.instance_packing(72, 1024) == 32

    def test_large_instances_do_not_pack(self, mxu):
        assert mxu.instance_packing(4096, 4096) == 1

    def test_packed_batch_faster_than_sequential(self, mxu):
        single = mxu.gemm_cycles(1024, 72, 1024, instances=1).total_cycles
        batched = mxu.gemm_cycles(1024, 72, 1024, instances=32).total_cycles
        assert batched < 32 * single

    def test_packed_utilization_bounded(self, mxu):
        result = mxu.gemm_cycles(1024, 72, 1024, instances=32)
        assert 0 < result.utilization <= 1.0

    def test_macs_account_for_all_instances(self, mxu):
        result = mxu.gemm_cycles(16, 128, 256, instances=10)
        assert result.macs == 10 * 16 * 128 * 256


class TestGemmEnergy:
    def test_energy_components_present(self, mxu):
        result = mxu.gemm(64, 2048, 2048)
        assert result.energy.component_total("mxu") > 0
        assert result.energy.total_dynamic > 0
        assert result.energy.total_leakage > 0

    def test_bf16_energy_higher(self, mxu):
        int8 = mxu.gemm(64, 2048, 2048, Precision.INT8)
        bf16 = mxu.gemm(64, 2048, 2048, Precision.BF16)
        assert bf16.energy.total > int8.energy.total

    def test_idle_energy_leakage_only(self, mxu):
        idle = mxu.idle_energy(500.0)
        assert idle.total_dynamic == 0.0
        assert idle.total_leakage > 0.0

    def test_leakage_scales_with_core_count(self):
        small = CIMMXU(config=CIMMXUConfig(grid_rows=8, grid_cols=8))
        large = CIMMXU(config=CIMMXUConfig(grid_rows=16, grid_cols=16))
        assert large.leakage_power_w == pytest.approx(4 * small.leakage_power_w)

    def test_dynamic_energy_per_mac_is_9x_lower_than_digital(self, mxu):
        digital = DigitalMXU()
        shape = (256, 2048, 2048)
        cim_result = mxu.gemm(*shape)
        digital_result = digital.gemm(*shape)
        ratio = digital_result.energy.total_dynamic / cim_result.energy.total_dynamic
        assert 7.0 < ratio < 12.0
