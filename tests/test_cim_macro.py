"""Tests for the digital CIM macro model."""

import pytest

from repro.common import Precision
from repro.cim.macro import CIMMacro, CIMMacroConfig


@pytest.fixture(scope="module")
def macro():
    return CIMMacro()


class TestConfig:
    def test_defaults_match_paper_core(self):
        config = CIMMacroConfig()
        assert config.input_channels == 128
        assert config.output_channels == 256
        assert config.macs_per_cycle == 128
        assert config.weight_capacity == 128 * 256

    def test_capacity_bits(self):
        config = CIMMacroConfig()
        assert config.weight_capacity_bits == 128 * 256 * 8

    def test_rejects_macs_above_capacity(self):
        with pytest.raises(ValueError):
            CIMMacroConfig(input_channels=4, output_channels=4, macs_per_cycle=100)

    def test_rejects_non_positive_fields(self):
        with pytest.raises(ValueError):
            CIMMacroConfig(banks=0)


class TestComputeCycles:
    def test_full_macro_vector_cycles(self, macro):
        # 128×256 MACs at 128 MACs/cycle = 256 cycles per input vector.
        assert macro.cycles_per_input_vector() == 256

    def test_partial_output_channels_proportional(self, macro):
        assert macro.cycles_per_input_vector(used_output_channels=128) == 128

    def test_partial_input_channels_proportional(self, macro):
        assert macro.cycles_per_input_vector(used_input_channels=64) == 128

    def test_bf16_adds_alignment_cycle(self, macro):
        int8 = macro.cycles_per_input_vector(precision=Precision.INT8)
        bf16 = macro.cycles_per_input_vector(precision=Precision.BF16)
        assert bf16 == int8 + 1

    def test_compute_cycles_linear_in_vectors(self, macro):
        assert macro.compute_cycles(10) == 10 * macro.cycles_per_input_vector()

    def test_zero_vectors_is_free(self, macro):
        assert macro.compute_cycles(0) == 0

    def test_invalid_channel_counts_rejected(self, macro):
        with pytest.raises(ValueError):
            macro.cycles_per_input_vector(used_output_channels=0)
        with pytest.raises(ValueError):
            macro.cycles_per_input_vector(used_output_channels=257)
        with pytest.raises(ValueError):
            macro.cycles_per_input_vector(used_input_channels=129)


class TestWeightWrite:
    def test_full_block_write_cycles(self, macro):
        # 128×256 bytes over a 256-bit port = 1024 cycles.
        assert macro.weight_write_cycles() == 1024

    def test_partial_block_proportional(self, macro):
        assert macro.weight_write_cycles(rows=64, cols=256) == 512

    def test_zero_block_is_free(self, macro):
        assert macro.weight_write_cycles(rows=0, cols=0) == 0

    def test_out_of_range_rejected(self, macro):
        with pytest.raises(ValueError):
            macro.weight_write_cycles(rows=129)
        with pytest.raises(ValueError):
            macro.weight_write_cycles(cols=300)


class TestInputDelivery:
    def test_delivery_cycles(self, macro):
        # One INT8 vector of 128 activations over a 32-bit port = 32 cycles.
        assert macro.input_delivery_cycles(1) == 32

    def test_delivery_slower_for_bf16(self, macro):
        assert macro.input_delivery_cycles(4, Precision.BF16) == 2 * macro.input_delivery_cycles(4)

    def test_delivery_never_blocks_compute(self, macro):
        # The macro consumes one vector every 256 cycles but can receive one
        # every 32 cycles, so input delivery is never the bottleneck.
        assert macro.input_delivery_cycles(1) < macro.cycles_per_input_vector()


class TestMacCounting:
    def test_full_counts(self, macro):
        assert macro.macs_for(3) == 3 * 128 * 256

    def test_partial_counts(self, macro):
        assert macro.macs_for(2, used_rows=10, used_cols=20) == 2 * 10 * 20
