"""Tests for the energy model and the EnergyBudget accumulator."""

import pytest

from repro.hw.energy import EnergyBudget, EnergyModel, peak_tops
from repro.hw.technology import get_node


class TestPeakTops:
    def test_reference_value(self):
        # 16384 MACs/cycle at 1.05 GHz = 34.4 INT8 TOPS.
        assert peak_tops(16384, 1.05) == pytest.approx(34.4, rel=0.01)

    def test_linear_in_macs(self):
        assert peak_tops(32768, 1.0) == pytest.approx(2 * peak_tops(16384, 1.0))


class TestEnergyBudget:
    def test_accumulates_by_component(self):
        budget = EnergyBudget()
        budget.add_dynamic("mxu", 1.0)
        budget.add_dynamic("mxu", 2.0)
        budget.add_leakage("mxu", 0.5)
        assert budget.component_total("mxu") == pytest.approx(3.5)

    def test_totals(self):
        budget = EnergyBudget()
        budget.add_dynamic("mxu", 1.0)
        budget.add_dynamic("vpu", 2.0)
        budget.add_leakage("hbm", 3.0)
        assert budget.total_dynamic == pytest.approx(3.0)
        assert budget.total_leakage == pytest.approx(3.0)
        assert budget.total == pytest.approx(6.0)
        assert budget.components == {"mxu", "vpu", "hbm"}

    def test_merge(self):
        a, b = EnergyBudget(), EnergyBudget()
        a.add_dynamic("mxu", 1.0)
        b.add_dynamic("mxu", 2.0)
        b.add_leakage("vpu", 1.5)
        a.merge(b)
        assert a.component_total("mxu") == pytest.approx(3.0)
        assert a.component_total("vpu") == pytest.approx(1.5)

    def test_scaled(self):
        budget = EnergyBudget()
        budget.add_dynamic("mxu", 2.0)
        budget.add_leakage("mxu", 1.0)
        scaled = budget.scaled(3.0)
        assert scaled.total == pytest.approx(9.0)
        # The original is untouched.
        assert budget.total == pytest.approx(3.0)

    def test_rejects_negative_energy(self):
        budget = EnergyBudget()
        with pytest.raises(ValueError):
            budget.add_dynamic("mxu", -1.0)
        with pytest.raises(ValueError):
            budget.add_leakage("mxu", -1.0)
        with pytest.raises(ValueError):
            budget.scaled(-2.0)


class TestEnergyModel:
    def setup_method(self):
        self.model = EnergyModel()

    def test_cim_mac_energy_is_about_9x_lower(self):
        digital = self.model.digital_mac_energy()
        cim = self.model.cim_mac_energy()
        assert digital / cim == pytest.approx(
            (self.model.calibration.cim_tops_per_watt / self.model.calibration.digital_tops_per_watt)
            * (1 - self.model.calibration.digital_leakage_fraction)
            / (1 - self.model.calibration.cim_leakage_fraction), rel=1e-6)
        assert digital > cim

    def test_digital_mac_energy_order_of_magnitude(self):
        # ~2.6 pJ/MAC at 0.77 TOPS/W; the dynamic part must be below that and
        # above a tenth of it.
        energy_pj = self.model.digital_mac_energy() * 1e12
        assert 0.26 < energy_pj < 2.6

    def test_bf16_costs_more_than_int8(self):
        assert self.model.digital_mac_energy(16) > self.model.digital_mac_energy(8)
        assert self.model.cim_mac_energy(16) > self.model.cim_mac_energy(8)

    def test_unsupported_precision_rejected(self):
        with pytest.raises(ValueError):
            self.model.digital_mac_energy(4)

    def test_leakage_powers_positive(self):
        assert self.model.digital_mxu_leakage_power() > 0
        assert self.model.cim_core_leakage_power() > 0

    def test_cim_core_leakage_is_per_core(self):
        # 128 cores of the default grid share the MXU leakage budget.
        total = self.model.cim_core_leakage_power() * 128
        # The whole CIM-MXU leaks less than the digital MXU (it burns ~9× less
        # power overall).
        assert total < self.model.digital_mxu_leakage_power()

    def test_memory_energy_ordering(self):
        n = 1024.0
        assert self.model.vmem_access_energy(n) < self.model.cmem_access_energy(n)
        assert self.model.cmem_access_energy(n) < self.model.hbm_access_energy(n)

    def test_memory_energy_linear_in_bytes(self):
        assert self.model.hbm_access_energy(2000.0) == pytest.approx(
            2 * self.model.hbm_access_energy(1000.0))

    def test_technology_scaling_reduces_dynamic_energy(self):
        scaled = EnergyModel(technology=get_node("tsmc7"))
        assert scaled.digital_mac_energy() < self.model.digital_mac_energy()
        assert scaled.vmem_access_energy(100.0) < self.model.vmem_access_energy(100.0)

    def test_hbm_energy_not_scaled_with_node(self):
        scaled = EnergyModel(technology=get_node("tsmc7"))
        assert scaled.hbm_access_energy(100.0) == pytest.approx(self.model.hbm_access_energy(100.0))
