"""Fixture tests for repro-lint: engine mechanics plus one suite per rule.

Each rule is exercised on small synthetic projects built from in-memory
overlays (no filesystem), with exact ``file:line`` locations asserted,
plus two planted-violation suites against the *real* repository tree:
RPR001 must fail loudly on a planted wall-clock read, and RPR002 must
flag a synthetic merge-base diff that edits a fingerprinted dataclass
without bumping its version string.  The final suite pins the acceptance
gate: the repository at HEAD lints clean.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    META_RULE,
    RULE_REGISTRY,
    Finding,
    Project,
    Rule,
    get_rule,
    lint_repository,
    register_rule,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(files, rule_id=None, base=None, diff_base=None, targets=None):
    """Lint an in-memory project; returns the findings list."""
    base_reader = (lambda rel: base.get(rel)) if base is not None else None
    project = Project(root=None, overlay=files, diff_base=diff_base,
                      base_reader=base_reader)
    rules = [RULE_REGISTRY[rule_id]] if rule_id else None
    if targets is None:
        targets = [rel for rel in files if rel.startswith("src/")]
    return run_lint(project, targets, rules=rules)


def src(text):
    return textwrap.dedent(text).lstrip("\n")


class TestEngine:
    def test_findings_carry_exact_locations_and_render(self):
        files = {"src/repro/x.py": src("""
            import time


            def stamp():
                return time.time()
        """)}
        findings = lint(files, "RPR001")
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.path, finding.line) == ("src/repro/x.py", 5)
        assert finding.rule == "RPR001"
        assert finding.render().startswith("src/repro/x.py:5:")
        assert "RPR001" in finding.render()
        payload = finding.to_dict()
        assert payload["line"] == 5 and payload["rule"] == "RPR001"

    def test_line_pragma_suppresses_the_finding(self):
        files = {"src/repro/x.py": src("""
            import time

            NOW = time.time()  # repro-lint: disable=RPR001 (fixture)
        """)}
        assert lint(files, "RPR001") == []

    def test_file_pragma_suppresses_every_finding_of_the_rule(self):
        files = {"src/repro/x.py": src("""
            # repro-lint: disable-file=RPR001 (fixture)
            import time

            A = time.time()
            B = time.time()
        """)}
        assert lint(files, "RPR001") == []

    def test_unused_pragma_is_a_finding(self):
        files = {"src/repro/x.py": src("""
            VALUE = 1  # repro-lint: disable=RPR001
        """)}
        findings = lint(files, "RPR001")
        assert [f.rule for f in findings] == [META_RULE]
        assert findings[0].line == 1
        assert "suppresses nothing" in findings[0].message

    def test_pragma_syntax_inside_a_docstring_is_not_a_pragma(self):
        files = {"src/repro/x.py": src("""
            '''Docs mention ``# repro-lint: disable=RPR001`` as syntax.'''
            VALUE = 1
        """)}
        assert lint(files, "RPR001") == []

    def test_unparsable_file_is_a_meta_finding(self):
        files = {"src/repro/x.py": "def broken(:\n"}
        findings = lint(files, "RPR001")
        assert [f.rule for f in findings] == [META_RULE]
        assert "could not parse" in findings[0].message

    def test_findings_sort_by_location(self):
        files = {
            "src/repro/b.py": "import time\nA = time.time()\n",
            "src/repro/a.py": "import time\nA = time.time()\nB = time.time()\n",
        }
        findings = lint(files, "RPR001")
        assert [(f.path, f.line) for f in findings] == [
            ("src/repro/a.py", 2), ("src/repro/a.py", 3),
            ("src/repro/b.py", 2)]

    def test_unknown_rule_lists_registered_ids(self):
        with pytest.raises(KeyError, match="RPR001"):
            get_rule("RPR999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_rule(RULE_REGISTRY["RPR001"])

    def test_rule_requires_a_check(self):
        with pytest.raises(ValueError, match="no check"):
            Rule(id="ZZZ1", name="empty", description="nothing")


class TestDeterminismRule:
    def test_wall_clock_calls_flagged(self):
        files = {"src/repro/x.py": src("""
            import time
            import datetime

            A = time.time()
            B = time.perf_counter()
            C = datetime.datetime.now()
        """)}
        findings = lint(files, "RPR001")
        assert [(f.line, f.rule) for f in findings] == [
            (4, "RPR001"), (5, "RPR001"), (6, "RPR001")]

    def test_time_function_imports_flagged(self):
        files = {"src/repro/x.py": "from time import perf_counter\n"}
        findings = lint(files, "RPR001")
        assert len(findings) == 1 and findings[0].line == 1
        assert "perf_counter" in findings[0].message

    def test_obs_package_may_read_the_wall(self):
        files = {"src/repro/obs/x.py": src("""
            import time

            EPOCH = time.perf_counter()
        """)}
        assert lint(files, "RPR001") == []

    def test_files_outside_src_repro_may_read_the_wall(self):
        files = {"benchmarks/bench_x.py": "import time\nT = time.time()\n"}
        assert lint(files, "RPR001", targets=["benchmarks/bench_x.py"]) == []

    def test_global_rng_flagged_even_outside_src_repro(self):
        files = {"benchmarks/bench_x.py": "import random\nX = random.random()\n"}
        findings = lint(files, "RPR001", targets=["benchmarks/bench_x.py"])
        assert len(findings) == 1 and "global" in findings[0].message

    def test_unseeded_random_flagged_seeded_allowed(self):
        files = {"src/repro/x.py": src("""
            import random

            BAD = random.Random()
            GOOD = random.Random(7)
            ALSO_GOOD = random.Random("fault/crash/3")
        """)}
        findings = lint(files, "RPR001")
        assert [(f.line,) for f in findings] == [(3,)]
        assert "unseeded" in findings[0].message

    def test_module_level_rng_functions_flagged(self):
        files = {"src/repro/x.py": src("""
            import random
            from random import randint

            X = random.choice([1, 2])
        """)}
        findings = lint(files, "RPR001")
        assert [f.line for f in findings] == [2, 4]

    def test_wall_clock_default_factory_flagged(self):
        files = {"src/repro/x.py": src("""
            import time
            from dataclasses import dataclass, field


            @dataclass
            class Job:
                submitted: float = field(default_factory=time.time)
        """)}
        findings = lint(files, "RPR001")
        assert len(findings) == 1 and findings[0].line == 7
        assert "default_factory" in findings[0].message


MINI_GRID = src("""
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class SweepPoint:
        design: str
        devices: int = 1
""")
MINI_ENGINE = src("""
    def point_key(point):
        return fingerprint("sweep-point/v6", point.design, point.devices)
""")


class TestFingerprintRule:
    def _project(self, head_grid, head_engine=MINI_ENGINE,
                 base_grid=MINI_GRID, base_engine=MINI_ENGINE):
        files = {"src/repro/sweep/grid.py": head_grid,
                 "src/repro/sweep/engine.py": head_engine}
        base = {"src/repro/sweep/grid.py": base_grid,
                "src/repro/sweep/engine.py": base_engine}
        return lint(files, "RPR002", base=base, diff_base="synthetic")

    def test_field_change_without_bump_flagged_at_version_line(self):
        head = MINI_GRID.replace("devices: int = 1",
                                 "devices: int = 1\n    fidelity: str = 'exact'")
        findings = self._project(head)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/sweep/engine.py"
        assert finding.line == 2  # the sweep-point/v6 literal's line
        assert "sweep-point" in finding.message
        assert "SweepPoint" in finding.message

    def test_field_change_with_bump_is_clean(self):
        head = MINI_GRID.replace("devices: int = 1",
                                 "devices: int = 1\n    fidelity: str = 'exact'")
        bumped = MINI_ENGINE.replace("sweep-point/v6", "sweep-point/v7")
        assert self._project(head, head_engine=bumped) == []

    def test_key_function_change_without_bump_flagged(self):
        head_engine = MINI_ENGINE.replace("point.design, point.devices",
                                          "point.design")
        findings = self._project(MINI_GRID, head_engine=head_engine)
        assert len(findings) == 1
        assert "point_key" in findings[0].message

    def test_docstring_and_comment_edits_do_not_demand_a_bump(self):
        head_engine = src("""
            def point_key(point):
                \"\"\"Newly documented.\"\"\"
                # a new comment
                return fingerprint("sweep-point/v6", point.design, point.devices)
        """)
        base_engine = src("""
            def point_key(point):
                return fingerprint("sweep-point/v6", point.design, point.devices)
        """)
        assert self._project(MINI_GRID, head_engine=head_engine,
                             base_engine=base_engine) == []

    def test_rule_is_inert_without_a_diff_base(self):
        head = MINI_GRID.replace("devices: int = 1", "devices: int = 2")
        files = {"src/repro/sweep/grid.py": head,
                 "src/repro/sweep/engine.py": MINI_ENGINE}
        assert lint(files, "RPR002") == []

    def test_api_schema_tolerates_appended_defaulted_fields(self):
        base_requests = src("""
            SCHEMA_VERSION = 1


            class SimulateRequest:
                rate: float
        """)
        head_requests = base_requests.replace(
            "    rate: float", "    rate: float\n    shards: int = 0")
        files = {"src/repro/api/requests.py": head_requests}
        base = {"src/repro/api/requests.py": base_requests}
        assert lint(files, "RPR002", base=base, diff_base="synthetic") == []

    def test_api_schema_flags_changed_existing_field(self):
        base_requests = src("""
            SCHEMA_VERSION = 1


            class SimulateRequest:
                rate: float
        """)
        head_requests = base_requests.replace("    rate: float",
                                              "    rate: int")
        files = {"src/repro/api/requests.py": head_requests}
        base = {"src/repro/api/requests.py": base_requests}
        findings = lint(files, "RPR002", base=base, diff_base="synthetic")
        assert len(findings) == 1
        assert "api-schema" in findings[0].message


class TestFrozenDataclassRule:
    def test_unfrozen_dataclass_in_contract_module_flagged(self):
        files = {"src/repro/api/payloads.py": src("""
            from dataclasses import dataclass


            @dataclass
            class Envelope:
                kind: str
        """)}
        findings = lint(files, "RPR003")
        assert len(findings) == 1 and findings[0].line == 5
        assert "Envelope" in findings[0].message

    def test_frozen_dataclass_in_contract_module_is_clean(self):
        files = {"src/repro/serving/metrics.py": src("""
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Report:
                p99_s: float
        """)}
        assert lint(files, "RPR003") == []

    def test_mutable_state_dataclass_outside_contract_modules_allowed(self):
        files = {"src/repro/serving/simulator.py": src("""
            from dataclasses import dataclass


            @dataclass
            class _ShardState:
                clock_s: float = 0.0
        """)}
        assert lint(files, "RPR003") == []

    def test_mutable_default_flagged_everywhere(self):
        files = {"src/repro/core/results.py": src("""
            from dataclasses import dataclass, field


            @dataclass
            class Accumulator:
                rows: list = field(default=[])
        """)}
        findings = lint(files, "RPR003")
        assert len(findings) == 1 and findings[0].line == 6
        assert "mutable default" in findings[0].message

    def test_default_factory_is_the_blessed_spelling(self):
        files = {"src/repro/core/results.py": src("""
            from dataclasses import dataclass, field


            @dataclass
            class Accumulator:
                rows: list = field(default_factory=list)
        """)}
        assert lint(files, "RPR003") == []


ROUTER_MODULE = src("""
    ROUTER_REGISTRY = {}


    def register_router(policy, overwrite=False):
        ROUTER_REGISTRY[policy.name] = policy


    class RouterPolicy:
        def __init__(self, name):
            self.name = name


    register_router(RouterPolicy(name="zigzag"))
""")
CLI_WITH_REGISTRY = 'from x import ROUTER_REGISTRY\nCHOICES = sorted(ROUTER_REGISTRY)\n'


class TestRegistrySyncRule:
    def test_registered_name_without_test_reference_flagged(self):
        files = {"src/repro/serving/router.py": ROUTER_MODULE,
                 "src/repro/cli.py": CLI_WITH_REGISTRY,
                 "tests/test_router.py": "def test_nothing():\n    pass\n"}
        findings = lint(files, "RPR004")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/serving/router.py"
        assert findings[0].line == 13
        assert "'zigzag'" in findings[0].message

    def test_tested_and_cli_wired_registration_is_clean(self):
        files = {"src/repro/serving/router.py": ROUTER_MODULE,
                 "src/repro/cli.py": CLI_WITH_REGISTRY,
                 "tests/test_router.py": 'NAME = "zigzag"\n'}
        assert lint(files, "RPR004") == []

    def test_registry_unreachable_from_cli_flagged(self):
        files = {"src/repro/serving/router.py": ROUTER_MODULE,
                 "src/repro/cli.py": "CHOICES = []\n",
                 "tests/test_router.py": 'NAME = "zigzag"\n'}
        findings = lint(files, "RPR004")
        assert len(findings) == 1
        assert "ROUTER_REGISTRY" in findings[0].message
        assert "unreachable" in findings[0].message

    def test_helper_default_name_resolves(self):
        module = src("""
            def register_autoscaler(policy):
                pass


            def fixed_autoscaler(name="fixed"):
                return name


            register_autoscaler(fixed_autoscaler())
        """)
        files = {"src/repro/serving/autoscaler.py": module,
                 "src/repro/cli.py": "import x\nAUTOSCALER_REGISTRY\n",
                 "tests/test_a.py": 'NAME = "fixed"\n'}
        assert lint(files, "RPR004") == []

    def test_helper_first_argument_name_resolves(self):
        module = src("""
            def register_fault(model):
                pass


            register_fault(_effect_model("replica-crash", "crash"))
        """)
        files = {"src/repro/serving/faults.py": module,
                 "src/repro/cli.py": "FAULT_REGISTRY\n",
                 "tests/test_f.py": 'NAME = "replica-crash"\n'}
        assert lint(files, "RPR004") == []

    def test_module_constant_name_resolves_across_files(self):
        files = {
            "src/repro/workloads/llm.py":
                'LLM_SCENARIO = ScenarioSpec(name="llm-serving")\n',
            "src/repro/workloads/registry.py": src("""
                def register_scenario(spec):
                    pass


                register_scenario(LLM_SCENARIO)
            """),
            "src/repro/cli.py": "SCENARIO_REGISTRY\n",
            "tests/test_s.py": 'NAME = "llm-serving"\n',
        }
        assert lint(files, "RPR004") == []

    def test_statically_unresolvable_name_flagged(self):
        module = src("""
            def register_search(strategy):
                pass


            register_search(make_strategy())
        """)
        files = {"src/repro/optimize/search.py": module,
                 "src/repro/cli.py": "SEARCH_REGISTRY\n",
                 "tests/test_s.py": "pass\n"}
        findings = lint(files, "RPR004")
        assert len(findings) == 1
        assert "cannot statically resolve" in findings[0].message


ERRORS_MODULE = src("""
    ERROR_CODES = (
        "invalid-field",
        "engine-error",
    )
""")


class TestErrorContractRule:
    def test_unknown_literal_code_flagged(self):
        files = {"src/repro/api/errors.py": ERRORS_MODULE,
                 "src/repro/api/facade.py": src("""
                     def fail():
                         raise ApiRequestError(ApiError(
                             code="not-a-code", message="boom"))
                 """)}
        findings = lint(files, "RPR005")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/api/facade.py"
        assert findings[0].line == 2
        assert "'not-a-code'" in findings[0].message

    def test_declared_code_and_non_literal_code_are_clean(self):
        files = {"src/repro/api/errors.py": ERRORS_MODULE,
                 "src/repro/api/facade.py": src("""
                     def ok(code):
                         ApiError(code="engine-error", message="m")
                         ApiError(code=code, message="m")
                 """)}
        assert lint(files, "RPR005") == []

    def test_positional_code_checked_too(self):
        files = {"src/repro/api/errors.py": ERRORS_MODULE,
                 "src/repro/api/x.py": 'E = ApiError("typo-code", "m")\n'}
        findings = lint(files, "RPR005")
        assert len(findings) == 1 and "'typo-code'" in findings[0].message

    def test_gateway_status_map_keys_must_be_declared(self):
        files = {"src/repro/api/errors.py": ERRORS_MODULE,
                 "src/repro/gateway/server.py": src("""
                     _ERROR_STATUS = {
                         "engine-error": 422,
                         "job-exploded": 500,
                     }
                 """)}
        findings = lint(files, "RPR005")
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "'job-exploded'" in findings[0].message


class TestTelemetryRule:
    def test_record_construction_outside_defer_translator_flagged(self):
        files = {"src/repro/serving/simulator.py": src("""
            def run(tel, track, start, end):
                tel.spans.append(Span(track, "step", start, end))
        """)}
        findings = lint(files, "RPR006")
        assert len(findings) == 1 and findings[0].line == 2
        assert "defer translator" in findings[0].message

    def test_record_construction_inside_defer_translator_is_clean(self):
        files = {"src/repro/serving/simulator.py": src("""
            def install(tel, track, rows):
                def materialize(spans, events, gauges):
                    for start, end in rows:
                        spans.append(Span(track, "step", start, end))
                tel.defer(materialize)
        """)}
        assert lint(files, "RPR006") == []

    def test_unguarded_emission_on_nullable_telemetry_flagged(self):
        files = {"src/repro/sweep/engine.py": src("""
            def sweep(telemetry):
                telemetry.count("sweep.points")
        """)}
        findings = lint(files, "RPR006")
        assert len(findings) == 1 and findings[0].line == 2
        assert "branch-free no-op" in findings[0].message

    def test_enclosing_if_guard_is_clean(self):
        files = {"src/repro/sweep/engine.py": src("""
            def sweep(self):
                if self.telemetry is not None:
                    self.telemetry.count("sweep.points")
        """)}
        assert lint(files, "RPR006") == []

    def test_early_return_guard_is_clean(self):
        files = {"src/repro/serving/simulator.py": src("""
            def summarise(telemetry, report):
                if telemetry is None or not telemetry.enabled:
                    return
                telemetry.span("serve", "run", 0.0, report.makespan_s)
        """)}
        assert lint(files, "RPR006") == []

    def test_narrowed_tel_local_is_trusted(self):
        files = {"src/repro/serving/cluster.py": src("""
            def route(telemetry):
                tel = telemetry if telemetry is not None and telemetry.enabled else None
                tel.count("cluster.routed")
        """)}
        assert lint(files, "RPR006") == []


class TestPlantedViolationsOnTheRealTree:
    """RPR001 and RPR002 must fail loudly against the actual repository."""

    def test_planted_wall_clock_read_fails_rpr001(self):
        planted = "src/repro/serving/_planted_fixture.py"
        project = Project(REPO_ROOT, overlay={
            planted: "import time\n\nSTAMP = time.time()\n"})
        findings = run_lint(project, [planted],
                            rules=[RULE_REGISTRY["RPR001"]])
        assert [(f.path, f.line, f.rule) for f in findings] == [
            (planted, 3, "RPR001")]

    def test_synthetic_unbumped_fingerprint_diff_fails_rpr002(self):
        grid = "src/repro/sweep/grid.py"
        head_text = (REPO_ROOT / grid).read_text(encoding="utf-8")
        base_text = head_text.replace('    parallelism: str = "pipeline"\n', "")
        assert base_text != head_text, "fixture relies on the SweepPoint field"

        def base_reader(rel):
            if rel == grid:
                return base_text
            path = REPO_ROOT / rel
            return path.read_text(encoding="utf-8") if path.is_file() else None

        project = Project(REPO_ROOT, diff_base="synthetic",
                          base_reader=base_reader)
        findings = run_lint(project, ["src/repro/sweep/engine.py"],
                            rules=[RULE_REGISTRY["RPR002"]])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "RPR002"
        assert finding.path == "src/repro/sweep/engine.py"
        assert "sweep-point" in finding.message
        assert "SweepPoint" in finding.message

    def test_bumped_version_string_silences_rpr002(self):
        grid = "src/repro/sweep/grid.py"
        engine = "src/repro/sweep/engine.py"
        head_grid = (REPO_ROOT / grid).read_text(encoding="utf-8")
        base_grid = head_grid.replace('    parallelism: str = "pipeline"\n', "")
        head_engine = (REPO_ROOT / engine).read_text(encoding="utf-8")
        base_engine = head_engine.replace("sweep-point/v6", "sweep-point/v5")
        assert base_engine != head_engine

        def base_reader(rel):
            if rel == grid:
                return base_grid
            if rel == engine:
                return base_engine
            path = REPO_ROOT / rel
            return path.read_text(encoding="utf-8") if path.is_file() else None

        project = Project(REPO_ROOT, diff_base="synthetic",
                          base_reader=base_reader)
        findings = run_lint(project, [engine],
                            rules=[RULE_REGISTRY["RPR002"]])
        assert findings == []


class TestCliAndAcceptance:
    def test_repository_at_head_lints_clean(self):
        findings, warning = lint_repository(REPO_ROOT)
        assert warning is None
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_exits_zero_on_clean_tree(self, capsys):
        exit_code = main(["lint", "--root", str(REPO_ROOT)])
        assert exit_code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_exits_nonzero_with_findings_and_json(self, tmp_path, capsys):
        (tmp_path / "setup.py").write_text("")
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\nSTAMP = time.time()\n")
        out_json = tmp_path / "findings.json"
        exit_code = main(["lint", "--root", str(tmp_path),
                          str(bad), "--json", str(out_json)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "src/repro/bad.py:3:" in captured.out
        payload = json.loads(out_json.read_text())
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "RPR001"

    def test_cli_list_rules_names_every_rule(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in ("RPR000", "RPR001", "RPR002", "RPR003",
                        "RPR004", "RPR005", "RPR006"):
            assert rule_id in output

    def test_cli_warns_and_passes_on_unresolvable_diff_base(self, capsys):
        exit_code = main(["lint", "--root", str(REPO_ROOT),
                          "--diff-base", "no-such-ref-anywhere"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "does not resolve" in captured.err

    def test_cli_diff_base_against_head_is_clean(self):
        # Requires a real git checkout; skip when the history is absent.
        probe = subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                               capture_output=True)
        if probe.returncode != 0:
            pytest.skip("not a git checkout")
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--root",
             str(REPO_ROOT), "--diff-base", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
