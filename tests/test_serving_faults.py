"""Tests for fault injection, arrival overlays and chaos determinism."""

import dataclasses
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.designs import design_a, tpuv4i_baseline
from repro.serving.autoscaler import FleetView, forecasting_autoscaler
from repro.serving.cluster import (
    ClusterSimulator,
    cluster_report_from_dict,
    cluster_run_key,
    simulate_cluster,
)
from repro.serving.faults import (
    FAULT_REGISTRY,
    FaultEvent,
    FaultSpec,
    fault_timeline,
    parse_fault,
)
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.spec import ServingSpec
from repro.serving.trace import (
    OverlaySpec,
    apply_overlay,
    generate_trace,
    parse_overlay,
)
from repro.sweep.cache import CachingInferenceSimulator
from repro.sweep.engine import SweepEngine
from repro.sweep.grid import SweepGrid
from repro.sweep.store import ResultStore
from repro.workloads.chat import RequestClass
from repro.workloads.llm import LLAMA2_7B, LLMConfig
from repro.workloads.registry import get_scenario
from repro.workloads.scenario import ScenarioKnobs

#: Same small-but-real fleet fixture the cluster tests use; one shared
#: memoised graph simulator keeps the chaos matrix cheap.
CHAOS_LLM = LLMConfig(name="chaos-test-llm", num_layers=4, num_heads=16,
                      d_model=2048, d_ff=8192, vocab_size=32000)
MIX = (RequestClass(input_tokens=64, output_tokens=32, weight=0.6),
       RequestClass(input_tokens=256, output_tokens=64, weight=0.4))
BASE_CONFIG = tpuv4i_baseline()
SHARED = CachingInferenceSimulator(BASE_CONFIG)
FLEET_SLO = SLO(ttft_s=0.5, tpot_s=0.05)

CRASH = FaultSpec("replica-crash", at_s=0.2, duration_s=1.0, replica=1)


def make_trace(num_requests=80, rate=50.0, seed=7):
    return generate_trace("poisson", MIX, rate, num_requests, seed)


def run_chaos(faults=(), replicas=3, trace=None, **kwargs):
    engines = [ServingSimulator(CHAOS_LLM, BASE_CONFIG, simulator=SHARED)
               for _ in range(replicas)]
    cluster = ClusterSimulator(engines, faults=faults, **kwargs)
    return cluster.run(trace if trace is not None else make_trace(),
                       slo=FLEET_SLO)


# ------------------------------------------------------------- fault models
class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="")
        with pytest.raises(ValueError, match="mttf_s"):
            FaultSpec("replica-crash", mttf_s=0.0)
        with pytest.raises(ValueError, match="duration_s"):
            FaultSpec("replica-crash", duration_s=0.0)
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec("slow-node", magnitude=0.5)
        with pytest.raises(ValueError, match="at_s"):
            FaultSpec("replica-crash", at_s=-1.0)
        with pytest.raises(ValueError, match="replica"):
            FaultSpec("replica-crash", replica=-1)

    def test_summary_mentions_onset_and_target(self):
        assert FaultSpec("replica-crash", at_s=2.0, duration_s=5.0,
                         replica=1).summary() == "replica-crash[@2s d=5s r=1]"
        assert "mttf=600s" in FaultSpec("slow-node").summary()

    def test_builtin_models_registered(self):
        for name in ("replica-crash", "slow-node", "admission-stall"):
            assert name in FAULT_REGISTRY

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault effect"):
            FaultEvent(time_s=0.0, replica=0, effect="melt", duration_s=1.0)
        with pytest.raises(ValueError, match="duration_s"):
            FaultEvent(time_s=0.0, replica=0, effect="crash", duration_s=0.0)


class TestFaultTimeline:
    def test_pure_function_of_its_arguments(self):
        specs = (FaultSpec("replica-crash", mttf_s=3.0, duration_s=0.5, seed=3),
                 FaultSpec("slow-node", mttf_s=5.0, duration_s=1.0, seed=9))
        assert fault_timeline(specs, 3, 20.0) == fault_timeline(specs, 3, 20.0)

    def test_pinned_onset_fires_exactly_once_per_target(self):
        events = fault_timeline([CRASH], 3, 10.0)
        assert events == (FaultEvent(time_s=0.2, replica=1, effect="crash",
                                     duration_s=1.0),)
        broadcast = fault_timeline(
            [FaultSpec("replica-crash", at_s=0.5, duration_s=1.0)], 3, 10.0)
        assert [event.replica for event in broadcast] == [0, 1, 2]

    def test_pinned_onset_outside_the_span_is_dropped(self):
        spec = FaultSpec("replica-crash", at_s=5.0, duration_s=1.0)
        assert fault_timeline([spec], 2, 2.0) == ()
        assert len(fault_timeline([spec], 2, 5.0)) == 2  # boundary included

    def test_stochastic_onsets_respect_the_outage_width(self):
        spec = FaultSpec("replica-crash", mttf_s=1.0, duration_s=0.5, seed=3)
        events = fault_timeline([spec], 2, 30.0)
        assert events  # a 1s MTTF over 30s fires with near certainty
        times = sorted(event.time_s for event in events)
        assert times == [event.time_s for event in
                         sorted(events, key=lambda e: e.time_s)]
        for replica in (0, 1):
            onsets = [e.time_s for e in events if e.replica == replica]
            gaps = [b - a for a, b in zip(onsets, onsets[1:])]
            assert all(gap >= spec.duration_s for gap in gaps)

    def test_seed_changes_the_schedule(self):
        base = FaultSpec("replica-crash", mttf_s=2.0, duration_s=0.5, seed=0)
        other = dataclasses.replace(base, seed=1)
        assert fault_timeline([base], 2, 60.0) != fault_timeline([other], 2, 60.0)

    def test_slow_events_carry_the_magnitude(self):
        spec = FaultSpec("slow-node", at_s=1.0, duration_s=2.0, magnitude=2.5)
        events = fault_timeline([spec], 1, 10.0)
        assert events[0].magnitude == 2.5
        crash = fault_timeline([CRASH], 2, 10.0)
        assert crash[0].magnitude == 1.0  # magnitude is a slow-node knob

    def test_bad_targets_rejected(self):
        with pytest.raises(ValueError, match="only 2 replicas"):
            fault_timeline([FaultSpec("replica-crash", replica=5)], 2, 10.0)
        with pytest.raises(ValueError, match="positive fleet size"):
            fault_timeline([CRASH], 0, 10.0)
        with pytest.raises(KeyError, match="replica-crash"):
            fault_timeline([FaultSpec("nope")], 2, 10.0)


class TestParseFault:
    def test_kind_alone_gets_the_defaults(self):
        assert parse_fault("replica-crash") == FaultSpec("replica-crash")

    def test_fields_parse_into_the_spec(self):
        spec = parse_fault("slow-node:at_s=10,duration_s=60,magnitude=2.5,replica=1")
        assert spec == FaultSpec("slow-node", at_s=10.0, duration_s=60.0,
                                 magnitude=2.5, replica=1)

    def test_errors_name_the_problem(self):
        with pytest.raises(ValueError, match="expected"):
            parse_fault("")
        with pytest.raises(KeyError, match="registered models"):
            parse_fault("nope:at_s=1")
        with pytest.raises(ValueError, match="known fields"):
            parse_fault("replica-crash:bogus=1")
        with pytest.raises(ValueError, match="invalid value"):
            parse_fault("replica-crash:at_s=abc")


# ---------------------------------------------------------- arrival overlays
class TestOverlayWarps:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            OverlaySpec(kind="")
        with pytest.raises(ValueError, match="start_s"):
            OverlaySpec("flash-crowd", start_s=-1.0)
        with pytest.raises(ValueError, match="duration_s"):
            OverlaySpec("flash-crowd", duration_s=0.0)
        with pytest.raises(ValueError, match="magnitude"):
            OverlaySpec("flash-crowd", magnitude=0.0)

    def test_flash_crowd_compresses_exactly_the_window(self):
        spec = OverlaySpec("flash-crowd", start_s=10.0, duration_s=30.0,
                           magnitude=3.0)
        trace = tuple(make_trace(num_requests=1))
        def warp(t):
            warped = apply_overlay(
                (dataclasses.replace(trace[0], arrival_s=t),), spec)
            return warped[0].arrival_s
        assert warp(5.0) == 5.0            # before the window: untouched
        assert warp(10.0) == 10.0
        assert warp(25.0) == pytest.approx(15.0)   # mid-window: 3x faster
        assert warp(40.0) == pytest.approx(20.0)   # window end: fully squeezed
        assert warp(50.0) == pytest.approx(30.0)   # after: shifted by the save

    def test_regional_shift_ramps_and_stays(self):
        spec = OverlaySpec("regional-shift", start_s=10.0, duration_s=30.0,
                           magnitude=3.0)
        trace = tuple(make_trace(num_requests=1))
        def warp(t):
            warped = apply_overlay(
                (dataclasses.replace(trace[0], arrival_s=t),), spec)
            return warped[0].arrival_s
        assert warp(4.0) == 4.0
        slope = (3.0 - 1.0) / 30.0
        ramp = 10.0 + math.log1p(slope * 30.0) / slope
        assert warp(40.0) == pytest.approx(ramp)
        assert warp(46.0) == pytest.approx(ramp + 6.0 / 3.0)  # steady 3x
        # A unit magnitude is the identity warp.
        flat = OverlaySpec("regional-shift", magnitude=1.0)
        assert apply_overlay(trace, flat)[0].arrival_s == trace[0].arrival_s

    def test_warps_are_monotone(self):
        grid = [i * 0.37 for i in range(200)]
        request = tuple(make_trace(num_requests=1))[0]
        for kind in ("flash-crowd", "regional-shift"):
            spec = OverlaySpec(kind, start_s=5.0, duration_s=20.0, magnitude=4.0)
            warped = [apply_overlay(
                (dataclasses.replace(request, arrival_s=t),), spec)[0].arrival_s
                for t in grid]
            assert all(b >= a for a, b in zip(warped, warped[1:]))

    def test_apply_overlay_preserves_identity_and_shape(self):
        trace = make_trace(num_requests=60, rate=4.0)
        spec = OverlaySpec("flash-crowd", start_s=2.0, duration_s=8.0,
                           magnitude=4.0)
        warped = apply_overlay(trace, spec)
        assert len(warped) == len(trace)
        shapes = {r.request_id: (r.input_tokens, r.output_tokens) for r in trace}
        assert {r.request_id: (r.input_tokens, r.output_tokens)
                for r in warped} == shapes
        arrivals = [r.arrival_s for r in warped]
        assert arrivals == sorted(arrivals)
        # The crowd genuinely compresses the schedule.
        assert warped[-1].arrival_s < trace[-1].arrival_s

    def test_parse_overlay(self):
        assert parse_overlay("flash-crowd") == OverlaySpec("flash-crowd")
        assert parse_overlay("regional-shift:start_s=5,duration_s=60,magnitude=2") \
            == OverlaySpec("regional-shift", start_s=5.0, duration_s=60.0,
                           magnitude=2.0)
        with pytest.raises(ValueError, match="expected"):
            parse_overlay("")
        with pytest.raises(KeyError, match="registered overlays"):
            parse_overlay("nope")
        with pytest.raises(ValueError, match="known fields"):
            parse_overlay("flash-crowd:bogus=1")
        with pytest.raises(ValueError, match="invalid value"):
            parse_overlay("flash-crowd:magnitude=abc")


# ------------------------------------------------------ forecasting autoscaler
def view(now_s, active, *, min_replicas=1, fleet_size=6):
    return FleetView(now_s=now_s, fleet_size=fleet_size,
                     min_replicas=min_replicas, active_count=active,
                     ready_count=active, outstanding_requests=0,
                     kv_pressure=0.0)


class TestForecastingAutoscaler:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            forecasting_autoscaler(window_s=0.0)
        with pytest.raises(ValueError, match="requests_per_replica_s"):
            forecasting_autoscaler(requests_per_replica_s=0.0)
        with pytest.raises(ValueError, match="lead_s"):
            forecasting_autoscaler(lead_s=-1.0)
        with pytest.raises(ValueError, match="hold_s"):
            forecasting_autoscaler(hold_s=-1.0)

    def test_burst_forecast_scales_out_ahead_of_demand(self):
        policy = forecasting_autoscaler(window_s=4.0, requests_per_replica_s=2.0)
        state = {}
        # 40 arrivals in one second: the measured rate alone demands more
        # than one replica, and the positive slope extrapolates higher.
        targets = [policy.decide(view(1.0 + i * 0.025, 1), state)
                   for i in range(40)]
        assert targets[-1] > 1

    def test_idle_tail_scales_in_only_after_the_hold(self):
        policy = forecasting_autoscaler(window_s=2.0, requests_per_replica_s=1.0,
                                        hold_s=5.0, lead_s=0.0)
        state = {}
        # Sparse arrivals, fleet wide awake at 4: the forecast says 1, but
        # hysteresis releases at most one replica per elapsed hold.
        targets = [policy.decide(view(10.0 + i * 1.0, 4), state)
                   for i in range(6)]
        assert targets[0] == 4       # hold starts counting here
        assert targets[-1] == 3      # exactly one step released
        assert all(t >= 3 for t in targets)

    def test_never_demands_below_min_replicas(self):
        policy = forecasting_autoscaler(window_s=2.0, requests_per_replica_s=4.0)
        state = {}
        for i in range(30):
            target = policy.decide(view(float(i), 3, min_replicas=3), state)
            assert target >= 3


# ------------------------------------------------------------- cluster chaos
@pytest.fixture(scope="module")
def clean_report():
    return run_chaos()


@pytest.fixture(scope="module")
def crash_report():
    # A hot trace: the crash must catch in-flight work to drain.
    return run_chaos(faults=(CRASH,), trace=make_trace(rate=150.0))


class TestClusterChaos:
    def test_conservation_under_crash(self, crash_report):
        report = crash_report
        assert report.completed + report.rejected + report.shed == 80
        assert report.shed == 0  # drained work is re-routed, never dropped

    def test_crash_disrupts_and_bills_downtime(self, crash_report):
        resilience = crash_report.resilience
        assert resilience.crash_count == 1
        assert resilience.fault_count == 1
        assert resilience.disrupted_requests > 0
        assert resilience.downtime_replica_s > 0.0
        assert resilience.availability < 1.0
        assert sum(1 for m in crash_report.requests if m.disrupted) \
            == resilience.disrupted_requests

    def test_fault_events_reported_in_absolute_time(self, crash_report):
        assert len(crash_report.fault_events) == 1
        event = crash_report.fault_events[0]
        first_arrival = min(m.arrival_s for m in crash_report.requests)
        assert event.time_s == pytest.approx(first_arrival + 0.2)
        assert event.effect == "crash"

    def test_chaos_run_is_deterministic(self, crash_report):
        again = run_chaos(faults=(CRASH,), trace=make_trace(rate=150.0))
        assert again.to_dict() == crash_report.to_dict()

    def test_fault_free_resilience_is_clean(self, clean_report):
        resilience = clean_report.resilience
        assert resilience.fault_count == 0
        assert resilience.availability == 1.0
        assert resilience.recovery_s == 0.0
        assert resilience.disrupted_requests == 0
        # With nothing disrupted, goodput-under-failure IS the goodput.
        assert resilience.goodput_under_failure_tokens_per_second \
            == clean_report.goodput_tokens_per_second

    def test_slow_node_inflates_latency_but_not_routing(self, clean_report):
        slow = run_chaos(faults=(FaultSpec("slow-node", at_s=0.0,
                                           duration_s=10.0, magnitude=3.0,
                                           replica=0),))
        # The routing pre-pass is blind to degradation: same assignment.
        assert [r.requests_routed for r in slow.replicas] \
            == [r.requests_routed for r in clean_report.replicas]
        assert slow.e2e.mean_s > clean_report.e2e.mean_s
        assert slow.resilience.crash_count == 0
        assert slow.resilience.availability == 1.0

    def test_stall_diverts_admissions_without_downtime(self, clean_report):
        stalled = run_chaos(faults=(FaultSpec("admission-stall", at_s=0.2,
                                              duration_s=1.0, replica=0),))
        assert stalled.resilience.availability == 1.0
        assert stalled.resilience.crash_count == 0
        assert stalled.resilience.disrupted_requests == 0
        assert stalled.completed + stalled.rejected + stalled.shed == 80
        assert stalled.replicas[0].requests_routed \
            < clean_report.replicas[0].requests_routed

    def test_whole_fleet_crash_still_serves_everyone(self):
        report = run_chaos(faults=(FaultSpec("replica-crash", at_s=0.5,
                                             duration_s=0.5),))
        assert report.resilience.crash_count == 3
        assert report.completed + report.rejected + report.shed == 80
        assert report.shed == 0  # queued on the earliest restart, not dropped

    def test_report_round_trips_infinite_recovery(self, crash_report):
        never = dataclasses.replace(
            crash_report,
            resilience=dataclasses.replace(crash_report.resilience,
                                           recovery_s=float("inf")))
        payload = json.loads(json.dumps(never.to_dict()))
        restored = cluster_report_from_dict(payload)
        assert restored.resilience.recovery_s == float("inf")
        assert restored.to_dict() == never.to_dict()


# ----------------------------------------------- chaos determinism and caching
def chaos_run_args(faults=(), overlay=None):
    scenario = get_scenario("chat-serving")
    settings = scenario.make_settings(ScenarioKnobs(
        batch=1, input_tokens=64, output_tokens=16))
    spec = ServingSpec(replicas=2, arrival_rate=16.0, num_requests=40, seed=7,
                       faults=faults, overlay=overlay)
    return LLAMA2_7B, design_a(), spec, settings


def chaos_grid():
    return SweepGrid(
        designs={"design-a": design_a()}, models=["llama2-7b"],
        input_tokens=64, output_tokens=16,
        schedulers=("fcfs",), arrival_rates=(16.0,),
        routers=("round-robin",), replica_counts=(2,), serving_requests=40,
        fault_sets=((), (FaultSpec("replica-crash", at_s=0.5, duration_s=1.0,
                                   replica=0),)),
        overlays=(None, OverlaySpec("flash-crowd", start_s=0.5, duration_s=1.0,
                                    magnitude=2.0)))


class TestChaosDeterminism:
    def test_grid_rejects_chaos_without_serving_axes(self):
        with pytest.raises(ValueError, match="serving grid"):
            SweepGrid(designs={"design-a": design_a()}, models=["llama2-7b"],
                      fault_sets=((CRASH,),))
        with pytest.raises(ValueError, match="non-empty"):
            SweepGrid(designs={"design-a": design_a()}, models=["llama2-7b"],
                      fault_sets=())

    def test_serial_and_parallel_chaos_sweeps_agree(self):
        grid = chaos_grid()
        serial = SweepEngine().sweep(grid)
        parallel = SweepEngine().sweep(grid, workers=2)
        assert len(serial) == 4  # healthy x crash x overlay axes
        assert parallel == serial

    def test_warm_store_serves_identical_chaos_report(self, tmp_path):
        model, config, spec, settings = chaos_run_args(
            faults=(FaultSpec("replica-crash", at_s=0.5, duration_s=1.0,
                              replica=0),),
            overlay=OverlaySpec("flash-crowd", start_s=0.5, duration_s=1.0,
                                magnitude=2.0))
        path = tmp_path / "store.jsonl"
        cold = simulate_cluster(model, config, spec, settings,
                                store=ResultStore(path))
        assert cold.resilience.crash_count == 1
        warm_store = ResultStore(path)
        warm = simulate_cluster(model, config, spec, settings, store=warm_store)
        assert warm_store.stats.hits == 1
        assert warm.to_dict(include_requests=False) == cold.to_dict(
            include_requests=False)
        assert warm.resilience == cold.resilience
        assert warm.fault_events == cold.fault_events

    def test_pre_chaos_store_misses_when_faults_requested(self, tmp_path):
        """A store warmed fault-blind must not answer for a chaos run."""
        model, config, clean_spec, settings = chaos_run_args()
        chaos_spec = dataclasses.replace(
            clean_spec, faults=(FaultSpec("replica-crash", at_s=0.5,
                                          duration_s=1.0, replica=0),))
        assert cluster_run_key(model, config, clean_spec, settings) \
            != cluster_run_key(model, config, chaos_spec, settings)
        store = ResultStore(tmp_path / "store.jsonl")
        simulate_cluster(model, config, clean_spec, settings, store=store)
        hits_before = store.stats.hits
        report = simulate_cluster(model, config, chaos_spec, settings,
                                  store=store)
        assert store.stats.hits == hits_before  # a miss, freshly simulated
        assert report.resilience.crash_count == 1
        assert len(store) == 2

    def test_overlay_alone_changes_the_fingerprint(self):
        model, config, clean_spec, settings = chaos_run_args()
        shifted = dataclasses.replace(
            clean_spec, overlay=OverlaySpec("regional-shift"))
        assert cluster_run_key(model, config, clean_spec, settings) \
            != cluster_run_key(model, config, shifted, settings)


# --------------------------------------------------------- chaos properties
def fault_spec_strategy():
    mttf = st.floats(min_value=0.3, max_value=4.0)
    duration = st.floats(min_value=0.1, max_value=1.5)
    return st.builds(
        FaultSpec,
        kind=st.sampled_from(sorted(FAULT_REGISTRY)),
        mttf_s=mttf, duration_s=duration,
        magnitude=st.floats(min_value=1.0, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2 ** 16))


CHAOS_SETTINGS = settings(max_examples=8, deadline=None, derandomize=True,
                          suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(scope="module")
def small_clean_report():
    return run_chaos(replicas=2, trace=make_trace(num_requests=24, rate=40.0))


class TestChaosProperties:
    @CHAOS_SETTINGS
    @given(faults=st.lists(fault_spec_strategy(), min_size=1, max_size=2))
    def test_any_fault_schedule_keeps_the_invariants(self, faults):
        report = run_chaos(faults=tuple(faults), replicas=2,
                           trace=make_trace(num_requests=24, rate=40.0))
        assert 0.0 <= report.utilisation <= 1.0
        assert 0.0 < report.resilience.availability <= 1.0
        assert report.completed + report.rejected + report.shed == 24
        assert report.resilience.shed_requests == report.shed
        assert report.resilience.recovery_s >= 0.0

    @CHAOS_SETTINGS
    @given(at_s=st.floats(min_value=0.0, max_value=0.3),
           duration_s=st.floats(min_value=0.3, max_value=2.0),
           magnitude=st.floats(min_value=1.0, max_value=4.0))
    def test_degradation_never_beats_the_healthy_fleet(
            self, small_clean_report, at_s, duration_s, magnitude):
        """Goodput under slow-node failure <= fault-free goodput, same trace."""
        slow = run_chaos(
            faults=(FaultSpec("slow-node", at_s=at_s, duration_s=duration_s,
                              magnitude=magnitude, replica=0),),
            replicas=2, trace=make_trace(num_requests=24, rate=40.0))
        assert slow.resilience.goodput_under_failure_tokens_per_second \
            <= small_clean_report.goodput_tokens_per_second + 1e-9

    @CHAOS_SETTINGS
    @given(deltas=st.lists(st.floats(min_value=0.01, max_value=2.0),
                           min_size=1, max_size=40),
           min_replicas=st.integers(min_value=1, max_value=4))
    def test_forecasting_autoscaler_respects_min_replicas(self, deltas,
                                                          min_replicas):
        policy = forecasting_autoscaler(window_s=2.0)
        state, now, active = {}, 0.0, 6
        for delta in deltas:
            now += delta
            target = policy.decide(
                view(now, active, min_replicas=min_replicas), state)
            assert target >= min_replicas
            active = max(min_replicas, min(6, target))
