"""Tests for the execution-unit registry and operator dispatch.

The headline invariants pinned here:

* every operator type the built-in workloads emit resolves to exactly one
  execution unit;
* a custom operator plus a custom unit round-trip through ``run_graph``
  without modifying ``repro.core`` (the registries are genuinely open);
* unsupported operators raise the structured ``UnsupportedOperatorError``;
* the generic busy+idle accounting charges every non-dispatched unit's
  leakage, exactly as the pre-registry ``isinstance`` paths did (the golden
  Table IV values pin the actual numbers in ``test_golden_table4.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.units import (
    ExecutionUnit,
    UnitCost,
    UnsupportedOperatorError,
)
from repro.hw.energy import EnergyBudget
from repro.workloads.graph import OperatorGraph
from repro.workloads.moe import GatingOp
from repro.workloads.operators import (
    ElementwiseOp,
    GeLUOp,
    LayerCategory,
    LayerNormOp,
    MatMulOp,
    Operator,
    SoftmaxOp,
)

#: Every operator type the built-in workload builders emit.
BUILTIN_OPERATORS = [
    MatMulOp(name="mm", category=LayerCategory.QKV_GEN, m=64, k=128, n=128),
    SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=64, row_length=64),
    LayerNormOp(name="ln", category=LayerCategory.LAYERNORM, rows=64, hidden_dim=128),
    GeLUOp(name="g", category=LayerCategory.GELU, elements=4096),
    ElementwiseOp(name="res", category=LayerCategory.OTHER, elements=4096),
    GatingOp(name="gate", category=LayerCategory.ROUTING, rows=64, num_experts=8, top_k=2),
]


class TestDispatchUniqueness:
    @pytest.mark.parametrize("op", BUILTIN_OPERATORS, ids=lambda op: type(op).__name__)
    def test_each_operator_type_claimed_by_exactly_one_unit(self, baseline_model, op):
        claims = [unit.name for unit in baseline_model.units.units if unit.supports(op)]
        assert len(claims) == 1

    @pytest.mark.parametrize("op,expected", [
        (BUILTIN_OPERATORS[0], "mxu"),
        (BUILTIN_OPERATORS[1], "vpu"),
        (BUILTIN_OPERATORS[5], "vpu"),
    ], ids=["matmul", "softmax", "gating"])
    def test_resolution_targets(self, baseline_model, op, expected):
        assert baseline_model.units.unit_for(op).name == expected

    def test_cim_chip_has_same_dispatch(self, cim_model):
        for op in BUILTIN_OPERATORS:
            assert len([u for u in cim_model.units.units if u.supports(op)]) == 1

    def test_gating_op_runs_on_vpu_with_mxu_idle_leakage(self, baseline_model):
        result = baseline_model.run_operator(BUILTIN_OPERATORS[5])
        assert result.unit == "vpu"
        assert result.mxu_busy_cycles == 0.0
        # Uniform accounting: the matrix units leak while the VPU gates.
        assert result.energy.component_total("mxu") > 0


class TestErrorPaths:
    def test_unsupported_operator_error_lists_types(self, baseline_model):
        @dataclass(frozen=True)
        class SortOp(Operator):
            elements: int = 1

        with pytest.raises(UnsupportedOperatorError) as excinfo:
            baseline_model.run_operator(
                SortOp(name="sort", category=LayerCategory.OTHER, elements=16))
        assert "SortOp" in str(excinfo.value)
        # The error lists what the chip *does* support (capability-declared).
        assert {MatMulOp, SoftmaxOp, LayerNormOp, GeLUOp,
                ElementwiseOp} <= set(excinfo.value.registered_types)
        assert "MatMulOp" in str(excinfo.value)
        # The structured error is still a TypeError for legacy callers.
        assert isinstance(excinfo.value, TypeError)

    def test_duplicate_unit_rejected(self, baseline_model):
        unit = baseline_model.units.units[0]
        with pytest.raises(ValueError, match="already registered"):
            baseline_model.units.register_unit(unit)

    def test_operator_pin_requires_known_unit(self, baseline_model):
        with pytest.raises(KeyError, match="unknown execution unit"):
            baseline_model.units.register_operator(MatMulOp, "npu")


@dataclass(frozen=True)
class FFTOp(Operator):
    """A user-defined operator type the built-in units know nothing about."""

    points: int = 1

    @property
    def flops(self) -> int:
        return self.points


class FFTUnit(ExecutionUnit):
    """A user-defined execution unit (fixed-function FFT engine)."""

    name = "fft"

    def __init__(self, cycles_per_point: float = 0.5,
                 leakage_joules_per_cycle: float = 1e-12) -> None:
        self.cycles_per_point = cycles_per_point
        self.leakage_joules_per_cycle = leakage_joules_per_cycle

    def supports(self, op: Operator) -> bool:
        return isinstance(op, FFTOp)

    def cost(self, op: Operator) -> UnitCost:
        energy = EnergyBudget()
        cycles = self.cycles_per_point * op.points
        energy.add_dynamic("fft", 2e-12 * op.points)
        return UnitCost(cycles=cycles, energy=energy, bound="compute", utilization=1.0)

    def idle_energy(self, cycles: float) -> EnergyBudget:
        budget = EnergyBudget()
        budget.add_leakage("fft", self.leakage_joules_per_cycle * cycles)
        return budget


class TestCustomRegistration:
    """A new operator + unit registers from outside ``repro.core``."""

    @pytest.fixture()
    def model_with_fft(self, baseline_config):
        # A private model: registration must not leak into other tests.
        from repro.core.tpu import TPUModel

        model = TPUModel(baseline_config)
        model.units.register_unit(FFTUnit())
        return model

    def test_custom_op_round_trips_through_run_graph(self, model_with_fft):
        graph = OperatorGraph(name="mixed")
        graph.add(MatMulOp(name="mm", category=LayerCategory.QKV_GEN, m=64, k=128, n=128))
        graph.add(FFTOp(name="fft", category=LayerCategory.OTHER, points=4096))
        graph.add(SoftmaxOp(name="sm", category=LayerCategory.ATTENTION,
                            rows=64, row_length=64))
        result = model_with_fft.run_graph(graph)
        assert [r.unit for r in result.operator_results] == ["mxu", "fft", "vpu"]
        fft_result = result.operator_results[1]
        assert fft_result.cycles == pytest.approx(0.5 * 4096)
        assert fft_result.energy.component_total("fft") > 0

    def test_custom_unit_charges_other_units_idle(self, model_with_fft):
        result = model_with_fft.run_operator(
            FFTOp(name="fft", category=LayerCategory.OTHER, points=4096))
        # Uniform accounting: MXUs and VPU leak while the FFT engine works.
        assert result.energy.component_total("mxu") > 0
        assert result.energy.component_total("vpu") > 0

    def test_custom_unit_leaks_while_others_work(self, model_with_fft):
        result = model_with_fft.run_operator(
            MatMulOp(name="mm", category=LayerCategory.QKV_GEN, m=64, k=128, n=128))
        assert result.energy.component_total("fft") > 0

    def test_explicit_pin_overrides_capability_scan(self, model_with_fft):
        # Route GeLU to the FFT engine; an explicit pin beats the VPU's claim.
        model_with_fft.units.register_operator(GeLUOp, "fft")
        with pytest.raises(AttributeError):
            # The FFT unit's cost model does not understand GeLU operands —
            # the pin is honoured (dispatch reached the FFT unit, not the VPU).
            model_with_fft.run_operator(
                GeLUOp(name="g", category=LayerCategory.GELU, elements=16))

    def test_baseline_chip_unaffected_by_other_models_registration(self, baseline_model):
        with pytest.raises(UnsupportedOperatorError):
            baseline_model.run_operator(
                FFTOp(name="fft", category=LayerCategory.OTHER, points=16))
