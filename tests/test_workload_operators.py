"""Tests for the workload operator definitions."""

import pytest

from repro.common import Precision
from repro.workloads.operators import (
    ElementwiseOp,
    GeLUOp,
    LayerCategory,
    LayerNormOp,
    MatMulOp,
    OperandSource,
    SoftmaxOp,
)


class TestMatMulOp:
    def make(self, **kwargs):
        defaults = dict(name="mm", category=LayerCategory.QKV_GEN, m=16, k=32, n=64)
        defaults.update(kwargs)
        return MatMulOp(**defaults)

    def test_macs_and_flops(self):
        op = self.make(batch=2)
        assert op.macs == 2 * 16 * 32 * 64
        assert op.flops == 2 * op.macs

    def test_stationary_weight_bytes_counted_once(self):
        op = self.make(batch=4, stationary_weights=True)
        assert op.weight_bytes == 32 * 64

    def test_dynamic_weight_bytes_counted_per_instance(self):
        op = self.make(batch=4, stationary_weights=False)
        assert op.weight_bytes == 4 * 32 * 64

    def test_precision_changes_byte_counts(self):
        int8 = self.make(precision=Precision.INT8)
        bf16 = self.make(precision=Precision.BF16)
        assert bf16.weight_bytes == 2 * int8.weight_bytes
        assert bf16.input_bytes == 2 * int8.input_bytes

    def test_output_bytes_use_accumulator_width(self):
        op = self.make()
        assert op.output_bytes == 16 * 64 * 4

    def test_gemv_detection(self):
        assert self.make(m=1).is_gemv_like
        assert self.make(m=8).is_gemv_like
        assert not self.make(m=128).is_gemv_like

    def test_arithmetic_intensity_positive(self):
        assert self.make().arithmetic_intensity > 0

    def test_is_matmul_flag(self):
        assert self.make().is_matmul

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(m=0)
        with pytest.raises(ValueError):
            self.make(batch=0)
        with pytest.raises(ValueError):
            MatMulOp(name="", category=LayerCategory.QKV_GEN, m=1, k=1, n=1)

    def test_default_operand_sources(self):
        op = self.make()
        assert op.weight_source is OperandSource.HBM
        assert op.activation_source is OperandSource.CMEM


class TestVectorOps:
    def test_softmax_elements(self):
        op = SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=10, row_length=20)
        assert op.elements == 200
        assert op.input_bytes == 200
        assert not op.is_matmul

    def test_layernorm_elements(self):
        op = LayerNormOp(name="ln", category=LayerCategory.LAYERNORM, rows=4, hidden_dim=128)
        assert op.elements == 512

    def test_gelu_bytes(self):
        op = GeLUOp(name="g", category=LayerCategory.GELU, elements=100,
                    precision=Precision.BF16)
        assert op.input_bytes == 200

    def test_elementwise_operand_count(self):
        op = ElementwiseOp(name="res", category=LayerCategory.OTHER, elements=50, operands=3)
        assert op.input_bytes == 150
        assert op.output_bytes == 50

    def test_elementwise_flops_rounding(self):
        op = ElementwiseOp(name="mod", category=LayerCategory.CONDITIONING, elements=10,
                           ops_per_element=2.5)
        assert op.flops == 25

    def test_vector_op_weight_bytes_zero(self):
        op = SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=1, row_length=2)
        assert op.weight_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=0, row_length=2)
        with pytest.raises(ValueError):
            GeLUOp(name="g", category=LayerCategory.GELU, elements=0)
        with pytest.raises(ValueError):
            ElementwiseOp(name="e", category=LayerCategory.OTHER, elements=5, operands=0)


class TestLayerCategory:
    def test_fig6_categories_present(self):
        labels = {category.value for category in LayerCategory}
        for expected in ("QKV Gen", "Attention", "Proj.", "FFN1", "FFN2",
                         "LayerNorm", "GeLU", "Conditioning"):
            assert expected in labels
