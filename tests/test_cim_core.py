"""Tests for the CIM core (macro + periphery) model."""

import pytest

from repro.cim.core import CIMCore
from repro.common import Precision


@pytest.fixture(scope="module")
def core():
    return CIMCore()


class TestGeometry:
    def test_macs_per_cycle(self, core):
        assert core.macs_per_cycle == 128

    def test_weight_capacity(self, core):
        assert core.weight_capacity_bytes == 128 * 256

    def test_psum_buffer_double_buffered(self, core):
        assert core.psum_buffer_bytes == 256 * 2 * 4


class TestCosts:
    def test_area_positive(self, core):
        assert core.area_mm2 > 0

    def test_128_cores_match_mxu_area(self, core):
        # 128 cores form the default 16×8 CIM-MXU whose area efficiency is the
        # Table II calibration point.
        mxu_area = core.area_mm2 * 128
        peak_tops = 2 * 16384 * 1.05e9 / 1e12
        assert peak_tops / mxu_area == pytest.approx(1.31, rel=0.01)

    def test_leakage_power_positive(self, core):
        assert core.leakage_power_w > 0

    def test_mac_energy_linear(self, core):
        assert core.mac_energy(2000) == pytest.approx(2 * core.mac_energy(1000))

    def test_bf16_mac_energy_higher(self, core):
        assert core.mac_energy(1000, Precision.BF16) > core.mac_energy(1000, Precision.INT8)

    def test_weight_write_energy_positive(self, core):
        assert core.weight_write_energy(1024) > 0

    def test_leakage_energy_linear_in_time(self, core):
        assert core.leakage_energy(2.0) == pytest.approx(2 * core.leakage_energy(1.0))

    def test_negative_inputs_rejected(self, core):
        with pytest.raises(ValueError):
            core.mac_energy(-1)
        with pytest.raises(ValueError):
            core.weight_write_energy(-1)
        with pytest.raises(ValueError):
            core.leakage_energy(-0.5)
