"""Tests for the vector processing unit component model."""

import pytest

from repro.vector.vpu import VectorUnit, VPUConfig


class TestConfig:
    def test_default_width_matches_table1(self):
        config = VPUConfig()
        assert config.lanes == 8 * 128

    def test_ops_per_cycle(self):
        config = VPUConfig(lanes=1024, alus_per_lane=4, efficiency=0.5)
        assert config.ops_per_cycle == pytest.approx(2048)

    def test_validation(self):
        with pytest.raises(ValueError):
            VPUConfig(lanes=0)
        with pytest.raises(ValueError):
            VPUConfig(efficiency=0.0)
        with pytest.raises(ValueError):
            VPUConfig(alus_per_lane=0)
        with pytest.raises(ValueError):
            VPUConfig(leakage_power_w=-1.0)


class TestExecution:
    def setup_method(self):
        self.vpu = VectorUnit()

    def test_cycles_include_launch_overhead(self):
        result = self.vpu.execute(total_ops=0, input_bytes=0, output_bytes=0)
        assert result.cycles == self.vpu.config.launch_overhead_cycles

    def test_cycles_scale_with_ops(self):
        small = self.vpu.execute(10_000, 0, 0)
        large = self.vpu.execute(1_000_000, 0, 0)
        assert large.cycles > small.cycles

    def test_energy_has_dynamic_and_leakage(self):
        result = self.vpu.execute(100_000, 1000, 1000)
        assert result.energy.total_dynamic > 0
        assert result.energy.total_leakage > 0
        assert result.energy.component_total("vpu") == pytest.approx(result.energy.total)

    def test_traffic_reported(self):
        result = self.vpu.execute(1000, 256, 128)
        assert result.total_operand_bytes == 384

    def test_idle_energy_leakage_only(self):
        idle = self.vpu.idle_energy(1_000_000)
        assert idle.total_dynamic == 0.0
        assert idle.total_leakage > 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            self.vpu.execute(-1, 0, 0)
        with pytest.raises(ValueError):
            self.vpu.idle_energy(-1)

    def test_throughput_is_realistic_for_softmax(self):
        # A 131k-row × 1024 softmax (the DiT attention softmax) must take on
        # the order of a millisecond, not microseconds or seconds.
        from repro.vector.softmax import softmax_op_counts
        cost = softmax_op_counts(8 * 16 * 1024, 1024)
        result = self.vpu.execute(cost.total_ops, cost.input_bytes, cost.output_bytes)
        seconds = result.cycles / (self.vpu.config.frequency_ghz * 1e9)
        assert 1e-4 < seconds < 1e-2
