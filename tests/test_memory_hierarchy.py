"""Tests for the two-level memory hierarchy with double buffering."""

import pytest

from repro.memory.hierarchy import MemoryHierarchy, TransferRequest


@pytest.fixture(scope="module")
def hierarchy():
    return MemoryHierarchy()


class TestTransferRequest:
    def test_valid_request(self):
        request = TransferRequest(1024, "hbm", "cmem")
        assert request.num_bytes == 1024

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            TransferRequest(1024, "cmem", "cmem")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            TransferRequest(1024, "l2", "cmem")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TransferRequest(-1, "hbm", "cmem")


class TestTransfers:
    def test_hbm_to_cmem_bandwidth_bound(self, hierarchy):
        num_bytes = 64 * 2**20
        result = hierarchy.hbm_to_cmem(num_bytes)
        ideal = num_bytes / hierarchy.main_memory.config.bytes_per_cycle
        assert result.cycles >= ideal

    def test_cmem_to_vmem_uses_oci(self, hierarchy):
        num_bytes = 2 * 2**20
        result = hierarchy.cmem_to_vmem(num_bytes)
        assert result.cycles >= num_bytes / hierarchy.oci.config.bandwidth_bytes_per_cycle

    def test_hbm_to_vmem_is_pipelined_max_of_hops(self, hierarchy):
        num_bytes = 8 * 2**20
        through = hierarchy.hbm_to_vmem(num_bytes).cycles
        hop1 = hierarchy.hbm_to_cmem(num_bytes).cycles
        hop2 = hierarchy.cmem_to_vmem(num_bytes).cycles
        assert through == pytest.approx(max(hop1, hop2))

    def test_transfer_energy_accumulates_components(self, hierarchy):
        result = hierarchy.hbm_to_vmem(1 << 20)
        assert result.energy.component_total("hbm") > 0
        assert result.energy.component_total("cmem") > 0
        assert result.energy.component_total("vmem") > 0

    def test_vmem_to_cmem_direction(self, hierarchy):
        result = hierarchy.vmem_to_cmem(1 << 20)
        assert result.cycles > 0

    def test_strided_transfer_slower(self, hierarchy):
        num_bytes = 16 * 2**20
        assert hierarchy.hbm_to_cmem(num_bytes, coalesced=False).cycles > \
            hierarchy.hbm_to_cmem(num_bytes, coalesced=True).cycles


class TestScheduling:
    def test_double_buffered_latency_is_max(self):
        assert MemoryHierarchy.overlapped_latency(100, 80) == 100
        assert MemoryHierarchy.overlapped_latency(80, 100) == 100

    def test_serialised_latency_is_sum(self):
        assert MemoryHierarchy.overlapped_latency(100, 80, double_buffered=False) == 180

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy.overlapped_latency(-1, 10)

    def test_double_buffer_fits(self, hierarchy):
        vmem_capacity = hierarchy.vmem.config.capacity_bytes
        assert hierarchy.double_buffer_fits(hierarchy.vmem, vmem_capacity // 2)
        assert not hierarchy.double_buffer_fits(hierarchy.vmem, vmem_capacity // 2 + 1)
