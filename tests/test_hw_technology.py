"""Tests for technology-node scaling."""

import pytest

from repro.hw.technology import (
    CALIBRATION_NODE,
    TECHNOLOGY_NODES,
    TechnologyNode,
    get_node,
    scale_area,
    scale_energy,
    scale_leakage_density,
)


class TestNodeTable:
    def test_calibration_node_is_22nm(self):
        assert CALIBRATION_NODE.feature_nm == 22.0
        assert CALIBRATION_NODE.energy_factor == 1.0
        assert CALIBRATION_NODE.area_factor == 1.0

    def test_all_nodes_have_positive_factors(self):
        for node in TECHNOLOGY_NODES.values():
            assert node.energy_factor > 0
            assert node.area_factor > 0
            assert node.leakage_factor > 0
            assert node.max_frequency_ghz > 0

    def test_energy_improves_with_scaling(self):
        ordered = sorted(TECHNOLOGY_NODES.values(), key=lambda n: n.feature_nm, reverse=True)
        factors = [node.energy_factor for node in ordered]
        assert factors == sorted(factors, reverse=True)

    def test_area_improves_with_scaling(self):
        ordered = sorted(TECHNOLOGY_NODES.values(), key=lambda n: n.feature_nm, reverse=True)
        factors = [node.area_factor for node in ordered]
        assert factors == sorted(factors, reverse=True)

    def test_get_node_known(self):
        assert get_node("tsmc7").feature_nm == 7.0

    def test_get_node_unknown_lists_options(self):
        with pytest.raises(KeyError, match="tsmc22"):
            get_node("intel4")


class TestScaling:
    def test_identity_scaling(self):
        node = get_node("tsmc22")
        assert scale_energy(3.0, node, node) == pytest.approx(3.0)
        assert scale_area(3.0, node, node) == pytest.approx(3.0)

    def test_energy_shrinks_to_7nm(self):
        scaled = scale_energy(1.0, get_node("tsmc22"), get_node("tsmc7"))
        assert scaled < 1.0

    def test_round_trip_is_identity(self):
        a, b = get_node("tsmc22"), get_node("tsmc7")
        assert scale_energy(scale_energy(2.0, a, b), b, a) == pytest.approx(2.0)
        assert scale_area(scale_area(2.0, a, b), b, a) == pytest.approx(2.0)

    def test_leakage_density_rises_at_advanced_nodes(self):
        scaled = scale_leakage_density(1.0, get_node("tsmc22"), get_node("tsmc7"))
        assert scaled > 1.0

    def test_validation_rejects_bad_node(self):
        with pytest.raises(ValueError):
            TechnologyNode("bad", -1.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            TechnologyNode("bad", 10.0, 0.0, 1.0, 1.0, 1.0)
