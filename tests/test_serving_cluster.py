"""Tests for the multi-replica cluster simulator and its fleet wiring."""

import dataclasses

import pytest

from repro.common import Precision
from repro.core.designs import design_a, design_b, tpuv4i_baseline
from repro.serving.cluster import (
    ClusterSimulator,
    FleetCostModel,
    ReplicaSummary,
    simulate_cluster,
)
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator
from repro.serving.spec import ServingSpec
from repro.serving.trace import Request, generate_trace
from repro.sweep.cache import CachingInferenceSimulator
from repro.sweep.engine import SweepEngine
from repro.sweep.export import fieldnames_of, to_csv
from repro.sweep.grid import SweepGrid, make_point
from repro.workloads.chat import RequestClass
from repro.workloads.llm import LLMConfig

#: Small but non-trivial model: weights take a visible bite out of one HBM.
CLUSTER_LLM = LLMConfig(name="cluster-test-llm", num_layers=4, num_heads=16,
                        d_model=2048, d_ff=8192, vocab_size=32000)

MIX = (RequestClass(input_tokens=64, output_tokens=32, weight=0.6),
       RequestClass(input_tokens=256, output_tokens=64, weight=0.4))


def make_trace(num_requests=80, rate=50.0, seed=7, kind="poisson"):
    return generate_trace(kind, MIX, rate, num_requests, seed)


def make_cluster(replicas=3, config=None, shared=None, **kwargs):
    config = config if config is not None else tpuv4i_baseline()
    engines = [ServingSimulator(CLUSTER_LLM, config, simulator=shared)
               for _ in range(replicas)]
    return ClusterSimulator(engines, **kwargs)


@pytest.fixture(scope="module")
def fleet_report():
    return make_cluster(replicas=3).run(make_trace(),
                                        slo=SLO(ttft_s=0.5, tpot_s=0.05))


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ClusterSimulator([])

    def test_mixed_models_rejected(self):
        other = LLMConfig(name="other-llm", num_layers=2, num_heads=8,
                          d_model=1024, d_ff=4096, vocab_size=32000)
        replicas = [ServingSimulator(CLUSTER_LLM, tpuv4i_baseline()),
                    ServingSimulator(other, tpuv4i_baseline())]
        with pytest.raises(ValueError, match="same model"):
            ClusterSimulator(replicas)

    def test_min_replicas_bounds(self):
        with pytest.raises(ValueError, match="min_replicas"):
            make_cluster(replicas=2, min_replicas=3)
        with pytest.raises(ValueError, match="min_replicas"):
            make_cluster(replicas=2, min_replicas=0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            make_cluster().run(())

    def test_undersized_replica_deployment_rejected(self):
        from repro.workloads.llm import GPT3_30B

        replicas = [ServingSimulator(GPT3_30B, tpuv4i_baseline(), devices=1)]
        with pytest.raises(ValueError, match="replica 0: gpt3-30b does not fit 1 x"):
            ClusterSimulator(replicas).run(make_trace(num_requests=5))

    def test_unknown_router_and_autoscaler_listed(self):
        with pytest.raises(KeyError, match="round-robin"):
            make_cluster(router="nope")
        with pytest.raises(KeyError, match="queue-depth"):
            make_cluster(autoscaler="nope")

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FleetCostModel(chip_hour_dollars=-1.0)


class TestFleetRun:
    def test_conservation(self, fleet_report):
        report = fleet_report
        assert report.num_requests == 80
        assert report.completed + report.rejected == 80
        assert sum(r.requests_routed for r in report.replicas) == 80
        assert sum(r.completed for r in report.replicas) == report.completed
        assert report.total_tokens == sum(r.total_tokens for r in report.replicas)

    def test_fleet_percentiles_cover_every_request(self, fleet_report):
        assert len(fleet_report.requests) == fleet_report.completed
        ids = [m.request_id for m in fleet_report.requests]
        assert ids == sorted(ids)

    def test_fixed_autoscaler_keeps_whole_fleet(self, fleet_report):
        start_s, count = fleet_report.replica_timeline[0]
        assert len(fleet_report.replica_timeline) == 1  # no scaling events
        assert count == 3
        assert fleet_report.peak_active_replicas == 3
        assert fleet_report.mean_active_replicas == pytest.approx(3.0)

    def test_round_robin_spreads_requests(self, fleet_report):
        routed = [r.requests_routed for r in fleet_report.replicas]
        assert max(routed) - min(routed) <= 1

    def test_energy_and_cost_accounting(self, fleet_report):
        report = fleet_report
        assert report.total_energy_joules > 0
        assert report.chip_hours > 0
        assert report.cost_per_million_tokens_dollars > 0
        expected = report.cost_model.run_dollars(report.chip_hours,
                                                 report.total_energy_joules)
        assert report.cost_per_million_tokens_dollars == pytest.approx(
            expected / (report.total_tokens / 1e6))

    def test_utilisation_bounded(self, fleet_report):
        assert 0.0 < fleet_report.utilisation <= 1.0
        for replica in fleet_report.replicas:
            assert replica.active_s > 0

    def test_utilisation_bounded_under_aggressive_scale_in(self):
        # Regression for drain-aware billing pushing utilisation past 1.0:
        # an opening burst scales the fleet out, a monster decode lands on a
        # high-index replica, and a long quiet tail scales everything back
        # in while that replica is still draining.  Fleet and per-replica
        # utilisation must stay inside [0, 1] throughout.
        requests = [Request(request_id=i, arrival_s=0.0,
                            input_tokens=64, output_tokens=16)
                    for i in range(12)]
        requests.append(Request(request_id=12, arrival_s=5.0,
                                input_tokens=64, output_tokens=30000))
        requests.extend(Request(request_id=13 + k, arrival_s=7.0 + 3.0 * k,
                                input_tokens=64, output_tokens=4)
                        for k in range(16))
        report = make_cluster(replicas=3, autoscaler="queue-depth",
                              router="least-outstanding-requests",
                              ).run(tuple(requests))
        assert len(report.replica_timeline) > 1  # the fleet actually scaled
        assert 0.0 <= report.utilisation <= 1.0
        for replica in report.replicas:
            assert 0.0 <= replica.utilisation <= 1.0
            assert replica.busy_s <= replica.active_s

    def test_utilisation_clamped_for_any_replica_rows(self):
        # The property must be provably in [0, 1] even for hand-built rows
        # whose busy time exceeds the billed time (the drain-billing shape
        # the clamp defends against).
        overrun = ReplicaSummary(
            index=0, tpu_name="tpuv4i", scheduler="fcfs", devices=2,
            active_s=10.0, busy_s=25.0, utilisation=1.0, requests_routed=1,
            completed=1, rejected=0, total_tokens=100, tokens_per_second=1.0,
            mxu_energy_joules=1.0, total_energy_joules=2.0,
            kv_budget_bytes=1, peak_kv_reserved_bytes=1,
            cost_cache_hits=0, cost_cache_misses=1)
        report = dataclasses.replace(make_cluster(replicas=1).run(
            make_trace(num_requests=5)), replicas=(overrun,))
        assert report.utilisation == 1.0

    def test_bit_for_bit_determinism(self):
        first = make_cluster(replicas=3, autoscaler="queue-depth",
                             router="least-kv-pressure").run(make_trace())
        second = make_cluster(replicas=3, autoscaler="queue-depth",
                              router="least-kv-pressure").run(make_trace())
        assert first.to_dict() == second.to_dict()

    def test_single_replica_cluster_matches_plain_serving(self):
        trace = make_trace()
        cluster = make_cluster(replicas=1).run(trace)
        plain = ServingSimulator(CLUSTER_LLM, tpuv4i_baseline()).run(trace)
        assert cluster.completed == plain.completed
        assert cluster.ttft.p99_s == plain.ttft.p99_s
        assert cluster.total_tokens == plain.total_tokens

    def test_heterogeneous_fleet(self):
        shared_trace = make_trace()
        replicas = [ServingSimulator(CLUSTER_LLM, tpuv4i_baseline()),
                    ServingSimulator(CLUSTER_LLM, design_a()),
                    ServingSimulator(CLUSTER_LLM, design_b(), max_batch=8)]
        report = ClusterSimulator(replicas,
                                  router="least-outstanding-requests").run(shared_trace)
        assert report.completed + report.rejected == len(shared_trace)
        names = {r.tpu_name for r in report.replicas}
        assert names == {"tpuv4i-baseline", "design-a", "design-b"}

    def test_to_dict_shapes(self, fleet_report):
        payload = fleet_report.to_dict()
        assert payload["router"] == "round-robin"
        assert len(payload["requests"]) == fleet_report.completed
        assert payload["replica_timeline"][0][1] == 3
        slim = fleet_report.to_dict(include_requests=False)
        assert "requests" not in slim

    def test_replica_rows_export_as_csv(self, fleet_report):
        text = to_csv(fleet_report.replicas,
                      fieldnames=fieldnames_of(type(fleet_report.replicas[0])))
        assert text.startswith("index,")
        assert text.count("\n") == 4  # header + three replicas


class TestAutoscaledRun:
    def test_cold_start_delays_scale_out(self):
        # A bursty overload forces scale-out; late replicas are active for
        # less simulated time than replica 0, which serves from the start.
        trace = make_trace(num_requests=120, rate=200.0, kind="bursty")
        report = make_cluster(replicas=3, autoscaler="queue-depth").run(trace)
        assert report.replica_timeline[0][1] == 1  # starts at min_replicas
        assert report.peak_active_replicas >= 2
        actives = [r.active_s for r in report.replicas]
        assert actives[0] >= max(actives[1:])

    def test_scale_in_drain_is_billed(self):
        # Scale-out under an opening burst, route one very long decode to
        # the high-index replica, then let a quiet tail trigger scale-in
        # while that decode is still draining: the drained work must stay
        # inside the billed time (utilisation <= 100%, cost covers it).
        requests = [Request(request_id=i, arrival_s=0.0,
                            input_tokens=64, output_tokens=32)
                    for i in range(10)]  # simultaneous burst: forces scale-out
        # Filler occupies replica 0 so least-outstanding sends the long
        # decode to the (just warmed-up) replica 1.
        requests.append(Request(request_id=10, arrival_s=5.9,
                                input_tokens=64, output_tokens=500))
        requests.append(Request(request_id=11, arrival_s=6.0,
                                input_tokens=64, output_tokens=20000))
        requests.extend(Request(request_id=12 + k, arrival_s=8.0 + 2.0 * k,
                                input_tokens=64, output_tokens=8)
                        for k in range(12))
        report = make_cluster(replicas=2, autoscaler="queue-depth",
                              router="least-outstanding-requests",
                              shared=CachingInferenceSimulator(tpuv4i_baseline()),
                              ).run(tuple(requests))
        counts = [count for _, count in report.replica_timeline]
        assert max(counts) == 2
        assert counts[-1] == 1  # the quiet tail scaled the fleet back in
        for replica in report.replicas:
            assert replica.active_s >= replica.busy_s
            assert 0.0 <= replica.utilisation <= 1.0
        assert report.chip_hours * 3600.0 >= sum(
            r.devices * r.busy_s for r in report.replicas)

    def test_mean_active_between_min_and_fleet(self):
        trace = make_trace(num_requests=120, rate=200.0, kind="bursty")
        report = make_cluster(replicas=3, autoscaler="queue-depth").run(trace)
        assert 1.0 <= report.mean_active_replicas <= 3.0

    def test_session_affinity_concentrates_one_session(self):
        # Every request of one session must land on one replica, however
        # loaded it is — the KV-reuse contract of the affinity router.
        requests = tuple(Request(request_id=i, arrival_s=0.05 * i,
                                 input_tokens=64, output_tokens=8,
                                 session_id=42)
                         for i in range(40))
        report = make_cluster(replicas=4, router="session-affinity",
                              shared=CachingInferenceSimulator(tpuv4i_baseline()),
                              ).run(requests)
        routed = sorted(r.requests_routed for r in report.replicas)
        assert routed == [0, 0, 0, 40]

    def test_session_affinity_spreads_distinct_sessions(self):
        requests = tuple(Request(request_id=i, arrival_s=0.05 * i,
                                 input_tokens=64, output_tokens=8,
                                 session_id=i)
                         for i in range(40))
        report = make_cluster(replicas=4, router="session-affinity",
                              shared=CachingInferenceSimulator(tpuv4i_baseline()),
                              ).run(requests)
        assert sum(1 for r in report.replicas if r.requests_routed > 0) > 1


class TestSimulateCluster:
    SPEC = ServingSpec(scheduler="fcfs", arrival_rate=40.0, num_requests=40,
                       seed=3, replicas=2, router="least-kv-pressure",
                       autoscaler="fixed")

    def test_runs_from_spec(self):
        from repro.core.simulator import LLMInferenceSettings

        settings = LLMInferenceSettings(batch=2, input_tokens=64,
                                        output_tokens=16, decode_kv_samples=2)
        report = simulate_cluster(CLUSTER_LLM, tpuv4i_baseline(), self.SPEC,
                                  settings)
        assert report.fleet_size == 2
        assert report.router == "least-kv-pressure"
        assert report.completed + report.rejected == 40

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            ServingSpec(replicas=0)
        with pytest.raises(ValueError, match="min_replicas"):
            ServingSpec(replicas=2, min_replicas=3)

    def test_spec_summary_mentions_fleet(self):
        assert "x2 least-kv-pressure/fixed" in self.SPEC.summary()
        assert "x1" not in ServingSpec().summary()


class TestSweepIntegration:
    def make_serving_grid(self, **overrides):
        return SweepGrid(designs={"baseline": tpuv4i_baseline()},
                         models=["llama2-7b"], scenarios=["llm-serving"],
                         precisions=(Precision.INT8,), batches=(2,),
                         schedulers=("fcfs",), arrival_rates=(20.0,),
                         serving_requests=20, input_tokens=64,
                         output_tokens=16, **overrides)

    def test_fleet_axes_expand(self):
        grid = self.make_serving_grid(routers=("round-robin", "least-kv-pressure"),
                                      replica_counts=(1, 2))
        specs = grid.serving_specs()
        # Replica count 1 is router-independent, so the two single-replica
        # specs collapse into one (no duplicate simulations or rows).
        assert len(specs) == 3
        assert {(s.router, s.replicas) for s in specs} == {
            ("round-robin", 1), ("round-robin", 2),
            ("least-kv-pressure", 2)}
        assert len(grid) == 3

    def test_router_only_axis_does_not_duplicate_rows(self):
        grid = self.make_serving_grid(routers=("round-robin",
                                               "least-kv-pressure"))
        assert len(grid.serving_specs()) == 1  # no replica axis: one spec

    def test_fleet_axes_require_serving_grid(self):
        with pytest.raises(ValueError, match="fleet axes"):
            SweepGrid(designs={"baseline": tpuv4i_baseline()},
                      models=["llama2-7b"], routers=("round-robin",))

    def test_invalid_replica_counts_rejected(self):
        with pytest.raises(ValueError, match="replica_counts"):
            self.make_serving_grid(replica_counts=(0,))

    def test_engine_evaluates_fleet_point(self):
        grid = self.make_serving_grid(routers=("round-robin",),
                                      replica_counts=(2,))
        rows = SweepEngine().sweep(grid)
        assert len(rows) == 1
        row = rows[0]
        assert "x2 round-robin/fixed" in row.settings_summary
        assert row.devices == 2  # one device per replica for this model
        assert row.item_unit == "token"
        assert row.throughput > 0

    def test_fleet_point_caches_and_reproduces(self):
        engine = SweepEngine()
        point = make_point("baseline", tpuv4i_baseline(), CLUSTER_LLM,
                           batch=2, input_tokens=64, output_tokens=16,
                           decode_kv_samples=2, scenario="llm-serving",
                           serving=ServingSpec(arrival_rate=30.0,
                                               num_requests=20, replicas=2))
        first = engine.evaluate(point)
        second = engine.evaluate(point)
        assert first == second
        assert engine.stats.point_hits == 1
        assert SweepEngine().evaluate(point) == first
