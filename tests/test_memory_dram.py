"""Tests for the HBM main-memory model."""

import pytest

from repro.memory.dram import MainMemory, MainMemoryConfig


class TestConfig:
    def test_defaults_match_table1(self):
        config = MainMemoryConfig()
        assert config.capacity_bytes == 8 * 2**30
        assert config.bandwidth_gbps == 614.0

    def test_bytes_per_cycle(self):
        config = MainMemoryConfig()
        assert config.bytes_per_cycle == pytest.approx(614e9 / 1.05e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MainMemoryConfig(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            MainMemoryConfig(coalesced_efficiency=1.5)
        with pytest.raises(ValueError):
            MainMemoryConfig(access_latency_cycles=-1)


class TestTransfers:
    def setup_method(self):
        self.memory = MainMemory()

    def test_zero_bytes_is_free(self):
        assert self.memory.transfer_cycles(0) == 0.0

    def test_coalesced_faster_than_strided(self):
        assert self.memory.transfer_cycles(1 << 20, coalesced=True) < \
            self.memory.transfer_cycles(1 << 20, coalesced=False)

    def test_large_transfer_dominated_by_bandwidth(self):
        num_bytes = 100 * 2**20
        cycles = self.memory.transfer_cycles(num_bytes)
        ideal = num_bytes / self.memory.config.bytes_per_cycle
        assert cycles == pytest.approx(ideal / self.memory.config.coalesced_efficiency, rel=0.01)

    def test_effective_bandwidth(self):
        assert self.memory.effective_bandwidth_gbps() == pytest.approx(614 * 0.92)
        assert self.memory.effective_bandwidth_gbps(coalesced=False) == pytest.approx(614 * 0.55)

    def test_capacity_check(self):
        assert self.memory.fits(8 * 2**30)
        assert not self.memory.fits(9 * 2**30)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            self.memory.transfer_cycles(-1)
        with pytest.raises(ValueError):
            self.memory.fits(-1)

    def test_transfer_cycles_monotonic_in_size(self):
        sizes = [2**10, 2**15, 2**20, 2**25]
        cycles = [self.memory.transfer_cycles(s) for s in sizes]
        assert cycles == sorted(cycles)
