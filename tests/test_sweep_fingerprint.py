"""Tests for the content-fingerprint layer of the sweep engine.

The cache keys must be pure functions of value content: identical across
object identities, across repeated runs, and — critically for the
multiprocessing fan-out — across Python processes with different hash seeds.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.common import Precision
from repro.core.designs import cim_tpu_default, design_a, tpuv4i_baseline
from repro.core.simulator import LLMInferenceSettings
from repro.sweep.engine import point_key
from repro.sweep.fingerprint import canonicalize, fingerprint
from repro.sweep.grid import make_point
from repro.workloads.llm import GPT3_30B, build_llm_layer

#: A snippet that recomputes reference fingerprints in a fresh interpreter.
_SUBPROCESS_SNIPPET = """
from repro.core.designs import tpuv4i_baseline
from repro.core.simulator import LLMInferenceSettings
from repro.sweep.engine import point_key
from repro.sweep.fingerprint import fingerprint
from repro.sweep.grid import make_point
from repro.workloads.llm import GPT3_30B, build_llm_layer

graph = build_llm_layer(GPT3_30B, "prefill", 2, 64)
print(fingerprint(tpuv4i_baseline(), graph))
print(point_key(make_point("baseline", tpuv4i_baseline(), GPT3_30B, batch=2,
                           input_tokens=64, output_tokens=16)))
"""


def _reference_keys() -> tuple[str, str]:
    graph = build_llm_layer(GPT3_30B, "prefill", 2, 64)
    graph_fp = fingerprint(tpuv4i_baseline(), graph)
    key = point_key(make_point("baseline", tpuv4i_baseline(), GPT3_30B, batch=2,
                               input_tokens=64, output_tokens=16))
    return graph_fp, key


class TestCanonicalize:
    def test_primitives_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize("x") == "x"
        assert canonicalize(None) is None
        assert canonicalize(True) is True

    def test_floats_use_exact_repr(self):
        assert canonicalize(0.1) == ["float", "0.1"]

    def test_enum_and_dataclass_forms(self):
        assert canonicalize(Precision.INT8) == ["enum", "Precision", "int8"]
        form = canonicalize(LLMInferenceSettings(batch=2, input_tokens=8, output_tokens=4))
        assert form[0] == "dataclass" and form[1] == "LLMInferenceSettings"

    def test_dict_keys_are_order_insensitive(self):
        assert canonicalize({"b": 1, "a": 2}) == canonicalize({"a": 2, "b": 1})

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            canonicalize(object())


class TestFingerprint:
    def test_equal_content_equal_key(self):
        assert fingerprint(tpuv4i_baseline()) == fingerprint(tpuv4i_baseline())
        graph_a = build_llm_layer(GPT3_30B, "prefill", 2, 64)
        graph_b = build_llm_layer(GPT3_30B, "prefill", 2, 64)
        assert fingerprint(graph_a) == fingerprint(graph_b)

    def test_different_configs_differ(self):
        keys = {fingerprint(config) for config in
                (tpuv4i_baseline(), cim_tpu_default(), design_a())}
        assert len(keys) == 3

    def test_different_graphs_differ(self):
        prefill = build_llm_layer(GPT3_30B, "prefill", 2, 64)
        decode = build_llm_layer(GPT3_30B, "decode", 2, 64)
        assert fingerprint(prefill) != fingerprint(decode)

    def test_argument_packing_matters(self):
        assert fingerprint(1, 2) != fingerprint((1, 2))

    def test_point_key_covers_design_label(self):
        base = make_point("baseline", tpuv4i_baseline(), GPT3_30B, batch=2,
                          input_tokens=64, output_tokens=16)
        renamed = make_point("other-label", tpuv4i_baseline(), GPT3_30B, batch=2,
                             input_tokens=64, output_tokens=16)
        assert point_key(base) != point_key(renamed)

    def test_determinism_across_processes(self):
        """Keys survive process boundaries and hash-seed randomisation."""
        graph_fp, key = _reference_keys()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        for seed in ("0", "424242"):
            env["PYTHONHASHSEED"] = seed
            output = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SNIPPET], env=env,
                capture_output=True, text=True, check=True).stdout.split()
            assert output == [graph_fp, key]
