"""Shared fixtures for the test suite.

The fixtures provide small, fast workload settings (tiny batch and sequence
lengths) so unit and integration tests stay quick, plus the paper's actual
evaluation settings for the few tests that check headline reproduction claims.
"""

from __future__ import annotations

import pytest

from repro.core.designs import cim_tpu_default, design_a, design_b, tpuv4i_baseline
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.core.tpu import TPUModel
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig


@pytest.fixture(scope="session")
def baseline_config():
    """The TPUv4i baseline configuration."""
    return tpuv4i_baseline()


@pytest.fixture(scope="session")
def cim_config():
    """The default CIM-based TPU configuration."""
    return cim_tpu_default()


@pytest.fixture(scope="session")
def design_a_config():
    """Design A (LLM-optimised CIM TPU)."""
    return design_a()


@pytest.fixture(scope="session")
def design_b_config():
    """Design B (DiT-optimised CIM TPU)."""
    return design_b()


@pytest.fixture(scope="session")
def baseline_model(baseline_config):
    """A chip model of the baseline TPU."""
    return TPUModel(baseline_config)


@pytest.fixture(scope="session")
def cim_model(cim_config):
    """A chip model of the default CIM TPU."""
    return TPUModel(cim_config)


@pytest.fixture(scope="session")
def baseline_simulator(baseline_config):
    """An inference simulator on the baseline TPU."""
    return InferenceSimulator(baseline_config)


@pytest.fixture(scope="session")
def cim_simulator(cim_config):
    """An inference simulator on the default CIM TPU."""
    return InferenceSimulator(cim_config)


@pytest.fixture(scope="session")
def tiny_llm():
    """A small LLM configuration that keeps unit tests fast."""
    return LLMConfig(name="tiny-llm", num_layers=2, num_heads=8, d_model=512, d_ff=2048,
                     vocab_size=1000)


@pytest.fixture(scope="session")
def tiny_dit():
    """A small DiT configuration that keeps unit tests fast."""
    return DiTConfig(name="tiny-dit", depth=2, num_heads=4, d_model=256)


@pytest.fixture(scope="session")
def tiny_llm_settings():
    """Small LLM inference settings for fast tests."""
    return LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16,
                                decode_kv_samples=2)


@pytest.fixture(scope="session")
def tiny_dit_settings():
    """Small DiT inference settings for fast tests."""
    return DiTInferenceSettings(batch=1, image_resolution=256, sampling_steps=2)


@pytest.fixture(scope="session")
def paper_llm_settings():
    """The paper's LLM evaluation settings (batch 8, 1024 in, 512 out)."""
    return LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512)


@pytest.fixture(scope="session")
def paper_dit_settings():
    """The paper's DiT evaluation settings (batch 8, 512×512)."""
    return DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50)
