"""Tests for the average-power summaries."""

import pytest

from repro.analysis.power import (
    PowerSummary,
    graph_power_summary,
    inference_power_summary,
    mxu_power_ratio,
)
from repro.core.designs import cim_tpu_default, make_cim_tpu, tpuv4i_baseline
from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import GPT3_30B


@pytest.fixture(scope="module")
def llm_settings():
    return LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=64,
                                decode_kv_samples=2)


@pytest.fixture(scope="module")
def dit_settings():
    return DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=5)


class TestPowerSummary:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerSummary("w", "t", duration_seconds=0.0, component_watts={})
        with pytest.raises(ValueError):
            PowerSummary("w", "t", duration_seconds=1.0, component_watts={"mxu": -1.0})

    def test_totals(self):
        summary = PowerSummary("w", "t", 1.0, {"mxu": 30.0, "vpu": 5.0})
        assert summary.total_watts == pytest.approx(35.0)
        assert summary.mxu_watts == pytest.approx(30.0)
        assert summary.component("hbm") == 0.0


class TestGraphPower:
    def test_prefill_mxu_power_is_tens_of_watts(self, baseline_simulator, paper_llm_settings):
        result = baseline_simulator.simulate_llm_prefill_layer(GPT3_30B, paper_llm_settings)
        summary = graph_power_summary(result)
        # Four digital MXUs at full tilt draw on the order of 100–200 W; the
        # prefill layer keeps them mostly busy.
        assert 30.0 < summary.mxu_watts < 300.0
        assert summary.total_watts > summary.mxu_watts

    def test_cim_mxu_power_much_lower(self, baseline_simulator, cim_simulator,
                                      paper_llm_settings):
        base = baseline_simulator.simulate_llm_prefill_layer(GPT3_30B, paper_llm_settings)
        cim = cim_simulator.simulate_llm_prefill_layer(GPT3_30B, paper_llm_settings)
        ratio = mxu_power_ratio(base, cim)
        assert ratio > 5.0

    def test_energy_equals_power_times_time(self, cim_simulator, paper_llm_settings):
        result = cim_simulator.simulate_llm_decode_layer(GPT3_30B, paper_llm_settings)
        summary = graph_power_summary(result)
        assert summary.mxu_watts * summary.duration_seconds == pytest.approx(result.mxu_energy)


class TestInferencePower:
    def test_dit_power_ratio_matches_paper_direction(self, dit_settings):
        baseline = InferenceSimulator(tpuv4i_baseline()).simulate_dit_inference(DIT_XL_2, dit_settings)
        large = InferenceSimulator(make_cim_tpu(8, 16, 16)).simulate_dit_inference(DIT_XL_2, dit_settings)
        # Paper: the 8×(16×16) configuration still consumes 3.56× less MXU
        # power than the baseline despite being the fastest design.
        ratio = mxu_power_ratio(baseline, large)
        assert 2.0 < ratio < 8.0

    def test_small_config_power_reduction_is_larger(self, dit_settings):
        baseline = InferenceSimulator(tpuv4i_baseline()).simulate_dit_inference(DIT_XL_2, dit_settings)
        small = InferenceSimulator(make_cim_tpu(2, 8, 8)).simulate_dit_inference(DIT_XL_2, dit_settings)
        large = InferenceSimulator(make_cim_tpu(8, 16, 16)).simulate_dit_inference(DIT_XL_2, dit_settings)
        # Paper: 2×(8×8) reduces MXU power by ~20×, far more than 8×(16×16).
        assert mxu_power_ratio(baseline, small) > mxu_power_ratio(baseline, large)

    def test_inference_summary_consistent_with_energy(self, llm_settings):
        inference = InferenceSimulator(cim_tpu_default()).simulate_llm_inference(GPT3_30B, llm_settings)
        summary = inference_power_summary(inference)
        assert summary.mxu_watts * summary.duration_seconds == pytest.approx(
            inference.mxu_energy, rel=1e-6)

    def test_zero_duration_rejected(self):
        from repro.core.results import GraphResult
        with pytest.raises(ValueError):
            graph_power_summary(GraphResult(name="empty", tpu_name="t"))
