"""Tests for the vector-operator cost models (softmax, layernorm, activations)."""

import pytest

from repro.vector.activations import elementwise_op_counts, gelu_tanh_op_counts
from repro.vector.layernorm import layernorm_op_counts
from repro.vector.softmax import DIV_OPS, EXP_OPS, softmax_op_counts


class TestSoftmax:
    def test_total_ops_formula(self):
        cost = softmax_op_counts(rows=1, row_length=10)
        expected = 10 * (1 + EXP_OPS + 1 + 1) + 10 * (EXP_OPS + 1) + DIV_OPS
        assert cost.total_ops == expected

    def test_linear_in_rows(self):
        one = softmax_op_counts(1, 256)
        many = softmax_op_counts(64, 256)
        assert many.total_ops == 64 * one.total_ops

    def test_elements(self):
        cost = softmax_op_counts(8, 128)
        assert cost.elements == 1024

    def test_traffic_scales_with_element_bytes(self):
        int8 = softmax_op_counts(8, 128, element_bytes=1)
        bf16 = softmax_op_counts(8, 128, element_bytes=2)
        assert bf16.input_bytes == 2 * int8.input_bytes

    def test_exp_dominates_cost(self):
        cost = softmax_op_counts(1, 1000)
        assert cost.ops_per_element > 2 * EXP_OPS * 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            softmax_op_counts(0, 10)
        with pytest.raises(ValueError):
            softmax_op_counts(10, 10, element_bytes=0)


class TestLayerNorm:
    def test_linear_in_rows(self):
        one = layernorm_op_counts(1, 512)
        many = layernorm_op_counts(32, 512)
        assert many.total_ops == 32 * one.total_ops

    def test_affine_costs_more(self):
        plain = layernorm_op_counts(4, 512, elementwise_affine=False)
        affine = layernorm_op_counts(4, 512, elementwise_affine=True)
        assert affine.total_ops > plain.total_ops

    def test_cheaper_than_softmax_per_element(self):
        ln = layernorm_op_counts(8, 1024)
        sm = softmax_op_counts(8, 1024)
        assert ln.ops_per_element < sm.ops_per_element

    def test_validation(self):
        with pytest.raises(ValueError):
            layernorm_op_counts(1, 0)


class TestActivations:
    def test_gelu_ops_per_element_constant(self):
        small = gelu_tanh_op_counts(100)
        large = gelu_tanh_op_counts(10000)
        assert small.ops_per_element == large.ops_per_element

    def test_gelu_linear_in_elements(self):
        assert gelu_tanh_op_counts(2000).total_ops == 2 * gelu_tanh_op_counts(1000).total_ops

    def test_gelu_traffic(self):
        cost = gelu_tanh_op_counts(1000, element_bytes=2)
        assert cost.input_bytes == 2000
        assert cost.output_bytes == 2000

    def test_elementwise_operand_traffic(self):
        residual = elementwise_op_counts("residual", 1000, operands=2)
        assert residual.input_bytes == 2000
        assert residual.output_bytes == 1000

    def test_elementwise_ops_per_element(self):
        modulate = elementwise_op_counts("modulate", 1000, ops_per_element=2.0, operands=3)
        assert modulate.total_ops == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            gelu_tanh_op_counts(0)
        with pytest.raises(ValueError):
            elementwise_op_counts("bad", 10, ops_per_element=0)
