"""Tests for the SRAM buffer model (VMEM / CMEM)."""

import pytest

from repro.memory.sram import SRAMBuffer, SRAMConfig, cmem_default, vmem_default


class TestConfig:
    def test_defaults(self):
        vmem = vmem_default()
        cmem = cmem_default()
        assert vmem.capacity_bytes == 16 * 2**20
        assert cmem.capacity_bytes == 128 * 2**20

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMConfig(name="", capacity_bytes=10, read_bytes_per_cycle=1, write_bytes_per_cycle=1)
        with pytest.raises(ValueError):
            SRAMConfig(name="x", capacity_bytes=0, read_bytes_per_cycle=1, write_bytes_per_cycle=1)
        with pytest.raises(ValueError):
            SRAMConfig(name="x", capacity_bytes=10, read_bytes_per_cycle=0, write_bytes_per_cycle=1)


class TestTiming:
    def setup_method(self):
        self.buffer = SRAMBuffer(SRAMConfig(name="test", capacity_bytes=1024,
                                            read_bytes_per_cycle=64, write_bytes_per_cycle=32))

    def test_read_cycles(self):
        assert self.buffer.read_cycles(640) == pytest.approx(10.0)

    def test_write_cycles(self):
        assert self.buffer.write_cycles(640) == pytest.approx(20.0)

    def test_zero_bytes_free(self):
        assert self.buffer.read_cycles(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            self.buffer.read_cycles(-1)


class TestAllocation:
    def setup_method(self):
        self.buffer = SRAMBuffer(SRAMConfig(name="test", capacity_bytes=1000,
                                            read_bytes_per_cycle=64, write_bytes_per_cycle=64))

    def test_allocate_and_release(self):
        self.buffer.allocate("weights", 600)
        assert self.buffer.allocated_bytes == 600
        assert self.buffer.free_bytes == 400
        self.buffer.release("weights")
        assert self.buffer.free_bytes == 1000

    def test_fits(self):
        self.buffer.allocate("a", 700)
        assert self.buffer.fits(300)
        assert not self.buffer.fits(301)

    def test_over_allocation_raises(self):
        self.buffer.allocate("a", 900)
        with pytest.raises(MemoryError):
            self.buffer.allocate("b", 200)

    def test_duplicate_name_raises(self):
        self.buffer.allocate("a", 100)
        with pytest.raises(ValueError):
            self.buffer.allocate("a", 100)

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            self.buffer.release("ghost")

    def test_reset(self):
        self.buffer.allocate("a", 100)
        self.buffer.allocate("b", 100)
        self.buffer.reset()
        assert self.buffer.allocated_bytes == 0
