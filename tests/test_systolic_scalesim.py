"""Tests for the SCALE-Sim compatible front end."""

import pytest

from repro.systolic.dataflows import Dataflow
from repro.systolic.scalesim import (
    GemmLayerSpec,
    ScaleSimConfig,
    run_scale_sim,
    transformer_gemm_topology,
)


class TestTopologyGeneration:
    def test_transformer_topology_has_four_gemms(self):
        topology = transformer_gemm_topology(batch=8, seq_len=128, d_model=512, d_ff=2048)
        assert len(topology) == 4
        names = [layer.name for layer in topology]
        assert any("qkv" in name for name in names)
        assert any("ffn2" in name for name in names)

    def test_topology_dimensions(self):
        topology = transformer_gemm_topology(batch=2, seq_len=16, d_model=64, d_ff=256)
        qkv = topology[0]
        assert qkv.m == 32 and qkv.k == 64 and qkv.n == 192

    def test_layer_spec_validation(self):
        with pytest.raises(ValueError):
            GemmLayerSpec("bad", 0, 10, 10)


class TestRunScaleSim:
    def setup_method(self):
        self.config = ScaleSimConfig()
        self.topology = transformer_gemm_topology(batch=2, seq_len=64, d_model=256, d_ff=1024)

    def test_report_has_one_row_per_layer(self):
        report = run_scale_sim(self.config, self.topology)
        assert len(report.layers) == len(self.topology)

    def test_total_cycles_is_sum_of_layers(self):
        report = run_scale_sim(self.config, self.topology)
        assert report.total_cycles == sum(layer.total_cycles for layer in report.layers)

    def test_utilization_bounds(self):
        report = run_scale_sim(self.config, self.topology)
        for layer in report.layers:
            assert 0.0 < layer.overall_utilization <= 1.0
            assert 0.0 < layer.mapping_efficiency <= 1.0

    def test_stalls_do_not_exceed_total(self):
        report = run_scale_sim(self.config, self.topology)
        for layer in report.layers:
            assert 0 <= layer.stall_cycles <= layer.total_cycles

    def test_sram_traffic_positive(self):
        report = run_scale_sim(self.config, self.topology)
        for layer in report.layers:
            assert layer.sram_ifmap_reads > 0
            assert layer.sram_filter_reads > 0
            assert layer.sram_ofmap_writes > 0

    def test_empty_topology_gives_empty_report(self):
        report = run_scale_sim(self.config, [])
        assert report.total_cycles == 0
        assert report.average_utilization == 0.0

    def test_output_stationary_dataflow_runs(self):
        config = ScaleSimConfig(dataflow=Dataflow.OUTPUT_STATIONARY)
        report = run_scale_sim(config, self.topology)
        assert report.total_cycles > 0

    def test_bigger_array_is_not_slower_for_large_gemm(self):
        big = ScaleSimConfig(array_rows=256, array_cols=256)
        large_gemm = [GemmLayerSpec("big", 4096, 4096, 4096)]
        small_report = run_scale_sim(self.config, large_gemm)
        big_report = run_scale_sim(big, large_gemm)
        assert big_report.total_cycles <= small_report.total_cycles
