"""End-to-end tests for the HTTP gateway and its async job queue.

The gateway is exercised the way a client sees it: a real
``ThreadingHTTPServer`` on an ephemeral port, real ``urllib`` requests,
JSON bodies both ways.  The properties under test are the service
contract: submissions validate synchronously (structured 4xx now, not a
failed job later), results are the facade's envelopes verbatim, the
shared store makes the gateway a multi-tenant cache (a warm repeat from
*any* client costs zero new simulations), and the same request yields a
byte-identical report over HTTP, through ``repro.api`` and via the CLI.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.api import AutoconfigPreviewRequest, SimulateRequest
from repro.cli import main as cli_main
from repro.gateway import JobManager, GatewayServer
from repro.sweep.store import ResultStore

#: Small, fast serving run shared by the e2e tests.
FAST = dict(llm="llama2-7b", input_tokens=64, output_tokens=16,
            rate=20.0, requests=30, seed=7)


def http(url, method="GET", payload=None, raw=None):
    """One JSON round-trip; 4xx/5xx return (status, body) instead of raising."""
    body = raw if raw is not None else (
        None if payload is None else json.dumps(payload).encode("utf-8"))
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def poll_until_done(base_url, job_id, timeout=60.0):
    """Poll the status route the way an HTTP client would."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, job = http(f"{base_url}/v1/jobs/{job_id}")
        assert status == 200
        if job["status"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} not finished after {timeout}s")


def strip_accounting(payload):
    return {key: value for key, value in payload.items()
            if key not in ("served_from_store", "new_simulations",
                           "store_hits", "store_misses")}


@pytest.fixture
def gateway(tmp_path):
    store = ResultStore(tmp_path / "store.jsonl")
    with GatewayServer(store, port=0) as server:
        yield server


class TestSubmitPollFetch:
    def test_submit_poll_fetch_round_trip(self, gateway):
        payload = SimulateRequest(**FAST).to_dict()
        status, accepted = http(f"{gateway.url}/v1/simulate", "POST", payload)
        assert status == 202
        assert accepted["status"] == "queued"
        assert accepted["status_url"] == f"/v1/jobs/{accepted['job_id']}"
        assert accepted["result_url"] == \
            f"/v1/jobs/{accepted['job_id']}/result"

        job = poll_until_done(gateway.url, accepted["job_id"])
        assert job["status"] == "done"
        assert job["new_simulations"] == 1
        assert job["fingerprint"] == accepted["fingerprint"]
        # The job carries its engine run's telemetry totals.
        assert job["telemetry"]["spans"] > 0

        status, result = http(f"{gateway.url}{accepted['result_url']}")
        assert status == 200
        assert result["kind"] == "simulate"
        assert result["new_simulations"] == 1
        assert not result["served_from_store"]
        assert result["report"]["num_requests"] == FAST["requests"]

    def test_warm_repeat_is_served_from_the_shared_store(self, gateway):
        payload = SimulateRequest(**FAST).to_dict()
        _, first = http(f"{gateway.url}/v1/simulate", "POST", payload)
        poll_until_done(gateway.url, first["job_id"])
        _, cold = http(f"{gateway.url}/v1/jobs/{first['job_id']}/result")

        # Second client, same request: zero new simulations, same bytes.
        _, second = http(f"{gateway.url}/v1/simulate", "POST", payload)
        poll_until_done(gateway.url, second["job_id"])
        status, warm = http(f"{gateway.url}/v1/jobs/{second['job_id']}/result")
        assert status == 200
        assert warm["new_simulations"] == 0
        assert warm["store_hits"] > 0
        assert warm["served_from_store"]
        assert strip_accounting(warm) == strip_accounting(cold)

    def test_store_outlives_the_gateway_process(self, tmp_path):
        path = tmp_path / "store.jsonl"
        payload = SimulateRequest(**FAST).to_dict()
        with GatewayServer(ResultStore(path), port=0) as first:
            _, job = http(f"{first.url}/v1/simulate", "POST", payload)
            poll_until_done(first.url, job["job_id"])
        # A freshly started gateway over the same store file serves warm.
        with GatewayServer(ResultStore(path), port=0) as second:
            _, job = http(f"{second.url}/v1/simulate", "POST", payload)
            poll_until_done(second.url, job["job_id"])
            _, warm = http(f"{second.url}/v1/jobs/{job['job_id']}/result")
        assert warm["new_simulations"] == 0
        assert warm["served_from_store"]

    def test_health_reports_queue_and_store(self, gateway):
        status, health = http(f"{gateway.url}/v1/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["jobs"] == 0
        assert health["store_entries"] == 0

    def test_jobs_listing_shows_submissions(self, gateway):
        payload = AutoconfigPreviewRequest(llm="llama2-7b").to_dict()
        _, accepted = http(f"{gateway.url}/v1/autoconfig-preview", "POST",
                           payload)
        poll_until_done(gateway.url, accepted["job_id"])
        status, listing = http(f"{gateway.url}/v1/jobs")
        assert status == 200
        assert [job["job_id"] for job in listing["jobs"]] == \
            [accepted["job_id"]]


class TestValidationErrors:
    def test_invalid_json_body_is_400(self, gateway):
        status, body = http(f"{gateway.url}/v1/simulate", "POST",
                            raw=b"{not json")
        assert status == 400
        assert body["error"]["code"] == "invalid-json"

    def test_oversized_body_is_400(self, gateway):
        from repro.gateway import MAX_BODY_BYTES

        status, body = http(f"{gateway.url}/v1/simulate", "POST",
                            raw=b" " * (MAX_BODY_BYTES + 1))
        assert status == 400
        assert body["error"]["code"] == "invalid-json"

    def test_unknown_field_is_400_with_field_path(self, gateway):
        payload = SimulateRequest(**FAST).to_dict()
        payload["rte"] = 9.0
        status, body = http(f"{gateway.url}/v1/simulate", "POST", payload)
        assert status == 400
        assert body["error"]["code"] == "unknown-field"
        assert body["error"]["field"] == "rte"

    def test_missing_required_field_is_400(self, gateway):
        status, body = http(f"{gateway.url}/v1/fleet", "POST",
                            payload={"kind": "fleet"})
        assert status == 400
        assert body["error"]["code"] == "missing-field"
        assert body["error"]["field"] == "rate"

    def test_kind_route_mismatch_is_400(self, gateway):
        payload = SimulateRequest(**FAST).to_dict()
        status, body = http(f"{gateway.url}/v1/fleet", "POST", payload)
        assert status == 400
        assert body["error"]["code"] == "invalid-kind"

    def test_invalid_field_value_is_400(self, gateway):
        payload = SimulateRequest(**FAST).to_dict()
        payload["scheduler"] = "lifo"
        status, body = http(f"{gateway.url}/v1/simulate", "POST", payload)
        assert status == 400
        assert body["error"]["code"] == "invalid-field"
        assert body["error"]["field"] == "scheduler"

    def test_unsupported_schema_version_is_400(self, gateway):
        payload = SimulateRequest(**FAST).to_dict()
        payload["schema_version"] = 99
        status, body = http(f"{gateway.url}/v1/simulate", "POST", payload)
        assert status == 400
        assert body["error"]["code"] == "unsupported-schema-version"

    def test_unknown_route_is_404(self, gateway):
        status, body = http(f"{gateway.url}/v1/simulator", "POST",
                            payload={})
        assert status == 404
        assert body["error"]["code"] == "unknown-route"

    def test_unknown_job_is_404(self, gateway):
        status, body = http(f"{gateway.url}/v1/jobs/job-999999")
        assert status == 404
        assert body["error"]["code"] == "unknown-job"

    def test_get_on_engine_route_is_405(self, gateway):
        status, body = http(f"{gateway.url}/v1/simulate")
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"

    def test_post_to_jobs_listing_is_405(self, gateway):
        status, body = http(f"{gateway.url}/v1/jobs", "POST", payload={})
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"


class TestJobLifecycle:
    @pytest.fixture
    def slow_gateway(self):
        """One worker whose first job blocks until ``release`` is set."""
        release = threading.Event()
        started = threading.Event()

        def runner(request, *, store=None, telemetry=None):
            started.set()
            assert release.wait(timeout=30)
            return api.run(request, store=store, telemetry=telemetry)

        with GatewayServer(None, port=0, workers=1, runner=runner) as server:
            yield server, release, started
            release.set()

    def test_cancel_queued_job_then_409_on_result(self, slow_gateway):
        server, release, started = slow_gateway
        payload = AutoconfigPreviewRequest(llm="llama2-7b").to_dict()
        _, first = http(f"{server.url}/v1/autoconfig-preview", "POST", payload)
        assert started.wait(timeout=10)
        _, second = http(f"{server.url}/v1/autoconfig-preview", "POST",
                         payload)

        # Result of the still-running first job: 409, try again later.
        status, body = http(f"{server.url}/v1/jobs/{first['job_id']}/result")
        assert status == 409
        assert body["error"]["code"] == "job-not-finished"

        # The queued second job cancels; its result is a 409 forever.
        status, cancelled = http(
            f"{server.url}/v1/jobs/{second['job_id']}/cancel", "POST")
        assert status == 200
        assert cancelled["status"] == "cancelled"
        status, body = http(f"{server.url}/v1/jobs/{second['job_id']}/result")
        assert status == 409
        assert body["error"]["code"] == "job-cancelled"

        # Cancelling the running first job is a no-op; it still completes.
        status, running = http(
            f"{server.url}/v1/jobs/{first['job_id']}/cancel", "POST")
        assert status == 200
        assert running["status"] == "running"
        release.set()
        job = poll_until_done(server.url, first["job_id"])
        assert job["status"] == "done"

    def test_worker_crash_is_a_500_job_failed(self):
        def runner(request, *, store=None, telemetry=None):
            raise RuntimeError("engine exploded")

        with GatewayServer(None, port=0, workers=1, runner=runner) as server:
            payload = AutoconfigPreviewRequest(llm="llama2-7b").to_dict()
            _, accepted = http(f"{server.url}/v1/autoconfig-preview", "POST",
                               payload)
            job = poll_until_done(server.url, accepted["job_id"])
            assert job["status"] == "failed"
            assert job["error"]["code"] == "job-failed"
            status, body = http(
                f"{server.url}/v1/jobs/{accepted['job_id']}/result")
        assert status == 500
        assert body["error"]["code"] == "job-failed"
        assert "engine exploded" in body["error"]["message"]


class TestJobManager:
    def test_ids_are_dense_and_fifo(self):
        manager = JobManager(None, workers=1,
                             runner=lambda request, **kwargs: api.run(request))
        request = AutoconfigPreviewRequest(llm="llama2-7b")
        jobs = [manager.submit(request) for _ in range(3)]
        assert [job.job_id for job in jobs] == \
            ["job-000001", "job-000002", "job-000003"]
        for job in jobs:
            assert manager.wait(job.job_id, timeout=30).status == "done"
        manager.shutdown()

    def test_submit_after_shutdown_is_rejected(self):
        manager = JobManager(None, workers=1)
        manager.shutdown()
        with pytest.raises(RuntimeError, match="shutting down"):
            manager.submit(AutoconfigPreviewRequest(llm="llama2-7b"))


class TestCrossSurfaceIdentity:
    def test_http_api_and_cli_reports_are_byte_identical(self, tmp_path,
                                                         capsys):
        request = SimulateRequest(**FAST)

        # Surface 1: direct facade call against a fresh store.
        via_api = api.simulate(
            request, store=ResultStore(tmp_path / "api.jsonl")).to_dict()

        # Surface 2: the HTTP gateway against its own fresh store.
        with GatewayServer(ResultStore(tmp_path / "http.jsonl"),
                           port=0) as server:
            _, accepted = http(f"{server.url}/v1/simulate", "POST",
                               request.to_dict())
            poll_until_done(server.url, accepted["job_id"])
            _, via_http = http(
                f"{server.url}/v1/jobs/{accepted['job_id']}/result")

        # Cold runs on fresh stores: the *entire* envelope matches,
        # accounting included.
        assert json.dumps(via_http, sort_keys=True) == \
            json.dumps(via_api, sort_keys=True)

        # Surface 3: the CLI with --json against its own fresh store.
        out_path = tmp_path / "report.json"
        code = cli_main([
            "--llm", FAST["llm"],
            "--input-tokens", str(FAST["input_tokens"]),
            "--output-tokens", str(FAST["output_tokens"]),
            "--seed", str(FAST["seed"]),
            "serve", "--rate", str(FAST["rate"]),
            "--requests", str(FAST["requests"]),
            "--store", str(tmp_path / "cli.jsonl"),
            "--json", str(out_path)])
        capsys.readouterr()
        assert code == 0
        via_cli = json.loads(out_path.read_text())
        assert json.dumps(via_cli, sort_keys=True) == \
            json.dumps(via_api["report"], sort_keys=True)
