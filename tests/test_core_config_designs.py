"""Tests for the TPU configuration and the predefined designs."""

import pytest

from repro.core.config import MXUType, TPUConfig
from repro.core.designs import (
    PREDEFINED_DESIGNS,
    cim_tpu_default,
    design_a,
    design_b,
    make_cim_tpu,
    tpuv4i_baseline,
)


class TestTPUConfig:
    def test_baseline_peak_throughput(self):
        config = tpuv4i_baseline()
        assert config.macs_per_cycle_per_mxu == 16384
        assert config.peak_macs_per_cycle == 4 * 16384
        assert config.peak_tops == pytest.approx(137.6, rel=0.01)

    def test_cim_default_matches_baseline_peak(self):
        # Table I: 16×8 CIM cores per MXU give the same MACs/cycle as 128×128.
        assert cim_tpu_default().peak_macs_per_cycle == tpuv4i_baseline().peak_macs_per_cycle

    def test_mxu_description(self):
        assert "systolic" in tpuv4i_baseline().mxu_description
        assert "CIM" in cim_tpu_default().mxu_description

    def test_with_updates_creates_copy(self):
        base = tpuv4i_baseline()
        updated = base.with_updates(mxu_count=8)
        assert updated.mxu_count == 8
        assert base.mxu_count == 4

    def test_table_rows_cover_table1(self):
        rows = dict(cim_tpu_default().table_rows())
        assert rows["Vector memory size"] == "16 MB"
        assert rows["Common memory size"] == "128 MB"
        assert rows["Main memory size"] == "8 GB"
        assert rows["Main memory bandwidth"] == "614 GB/s"

    def test_validation(self):
        with pytest.raises(ValueError):
            TPUConfig(name="")
        with pytest.raises(ValueError):
            TPUConfig(mxu_count=0)


class TestDesigns:
    def test_baseline_is_systolic(self):
        assert tpuv4i_baseline().mxu_type is MXUType.SYSTOLIC

    def test_cim_designs_are_cim(self):
        for config in (cim_tpu_default(), design_a(), design_b()):
            assert config.mxu_type is MXUType.CIM

    def test_design_a_dimensions(self):
        config = design_a()
        assert config.mxu_count == 4
        assert (config.cim_grid_rows, config.cim_grid_cols) == (8, 8)

    def test_design_b_dimensions(self):
        config = design_b()
        assert config.mxu_count == 8
        assert (config.cim_grid_rows, config.cim_grid_cols) == (16, 8)

    def test_design_a_has_half_the_baseline_peak(self):
        assert design_a().peak_macs_per_cycle == tpuv4i_baseline().peak_macs_per_cycle // 2

    def test_design_b_has_twice_the_baseline_peak(self):
        assert design_b().peak_macs_per_cycle == 2 * tpuv4i_baseline().peak_macs_per_cycle

    def test_make_cim_tpu_naming(self):
        config = make_cim_tpu(2, 16, 16)
        assert config.name == "cim-2x16x16"
        assert config.mxu_count == 2

    def test_predefined_designs_registry(self):
        assert set(PREDEFINED_DESIGNS) == {"baseline", "cim-default", "design-a", "design-b"}

    def test_designs_share_table1_memory_system(self):
        baseline = tpuv4i_baseline()
        for config in PREDEFINED_DESIGNS.values():
            assert config.vmem_bytes == baseline.vmem_bytes
            assert config.cmem_bytes == baseline.cmem_bytes
            assert config.main_memory_bandwidth_gbps == baseline.main_memory_bandwidth_gbps
            assert config.frequency_ghz == baseline.frequency_ghz
