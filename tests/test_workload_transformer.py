"""Tests for the Transformer layer builders (prefill and decode)."""

import pytest

from repro.common import Precision
from repro.workloads.operators import LayerCategory, SoftmaxOp
from repro.workloads.transformer import (
    TransformerLayerConfig,
    build_decode_layer,
    build_prefill_layer,
)


@pytest.fixture(scope="module")
def layer_config():
    return TransformerLayerConfig(d_model=512, num_heads=8, d_ff=2048)


class TestLayerConfig:
    def test_head_dim_derived(self, layer_config):
        assert layer_config.resolved_head_dim == 64

    def test_qkv_output_dim(self, layer_config):
        assert layer_config.qkv_output_dim == 3 * 512

    def test_explicit_head_dim(self):
        config = TransformerLayerConfig(d_model=100, num_heads=3, d_ff=400, head_dim=32)
        assert config.resolved_head_dim == 32

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            TransformerLayerConfig(d_model=100, num_heads=3, d_ff=400)

    def test_weight_bytes_per_layer(self, layer_config):
        expected = 512 * 3 * 512 + 512 * 512 + 512 * 2048 + 2048 * 512
        assert layer_config.weight_bytes_per_layer == expected

    def test_gated_ffn_has_more_weights(self):
        plain = TransformerLayerConfig(d_model=512, num_heads=8, d_ff=2048)
        gated = TransformerLayerConfig(d_model=512, num_heads=8, d_ff=2048, gated_ffn=True)
        assert gated.weight_bytes_per_layer > plain.weight_bytes_per_layer


class TestPrefillLayer:
    def test_contains_expected_categories(self, layer_config):
        graph = build_prefill_layer(layer_config, batch=2, seq_len=64)
        categories = {op.category for op in graph}
        for expected in (LayerCategory.QKV_GEN, LayerCategory.ATTENTION, LayerCategory.PROJECTION,
                         LayerCategory.FFN1, LayerCategory.FFN2, LayerCategory.LAYERNORM,
                         LayerCategory.GELU):
            assert expected in categories

    def test_qkv_dimensions(self, layer_config):
        graph = build_prefill_layer(layer_config, batch=2, seq_len=64)
        qkv = next(op for op in graph.matmul_operators if op.category is LayerCategory.QKV_GEN)
        assert qkv.m == 128 and qkv.k == 512 and qkv.n == 1536

    def test_attention_matmuls_are_batched_and_dynamic(self, layer_config):
        graph = build_prefill_layer(layer_config, batch=2, seq_len=64)
        attention = [op for op in graph.matmul_operators if op.category is LayerCategory.ATTENTION]
        assert len(attention) == 2
        for op in attention:
            assert op.batch == 2 * 8
            assert not op.stationary_weights

    def test_softmax_shape(self, layer_config):
        graph = build_prefill_layer(layer_config, batch=2, seq_len=64)
        softmax = next(op for op in graph if isinstance(op, SoftmaxOp))
        assert softmax.rows == 2 * 8 * 64
        assert softmax.row_length == 64

    def test_total_macs_scale_with_seq_len(self, layer_config):
        short = build_prefill_layer(layer_config, batch=1, seq_len=32).total_macs
        long = build_prefill_layer(layer_config, batch=1, seq_len=64).total_macs
        assert long > 2 * short  # attention grows quadratically

    def test_precision_propagates(self, layer_config):
        graph = build_prefill_layer(layer_config, batch=1, seq_len=16, precision=Precision.BF16)
        assert all(op.precision is Precision.BF16 for op in graph)

    def test_validation(self, layer_config):
        with pytest.raises(ValueError):
            build_prefill_layer(layer_config, batch=0, seq_len=16)


class TestDecodeLayer:
    def test_dense_matmuls_are_gemv_shaped(self, layer_config):
        graph = build_decode_layer(layer_config, batch=4, kv_len=256)
        qkv = next(op for op in graph.matmul_operators if op.category is LayerCategory.QKV_GEN)
        assert qkv.m == 4  # one token per sequence

    def test_attention_uses_kv_length(self, layer_config):
        graph = build_decode_layer(layer_config, batch=4, kv_len=256)
        qk = next(op for op in graph.matmul_operators
                  if op.category is LayerCategory.ATTENTION and op.n == 256)
        assert qk.m == 1 and qk.k == 64
        sv = next(op for op in graph.matmul_operators
                  if op.category is LayerCategory.ATTENTION and op.k == 256)
        assert sv.n == 64

    def test_kv_cache_update_present(self, layer_config):
        graph = build_decode_layer(layer_config, batch=4, kv_len=256)
        assert any("kv_cache_update" in op.name for op in graph)

    def test_decode_macs_much_smaller_than_prefill(self, layer_config):
        prefill = build_prefill_layer(layer_config, batch=4, seq_len=256).total_macs
        decode = build_decode_layer(layer_config, batch=4, kv_len=256).total_macs
        assert decode < prefill / 50

    def test_gated_ffn_adds_gate_multiply(self):
        config = TransformerLayerConfig(d_model=512, num_heads=8, d_ff=2048, gated_ffn=True)
        graph = build_decode_layer(config, batch=1, kv_len=16)
        assert any("gate_mul" in op.name for op in graph)
        ffn1 = next(op for op in graph.matmul_operators if op.category is LayerCategory.FFN1)
        assert ffn1.n == 2 * 2048

    def test_validation(self, layer_config):
        with pytest.raises(ValueError):
            build_decode_layer(layer_config, batch=1, kv_len=0)
