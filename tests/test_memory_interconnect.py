"""Tests for the OCI and ICI interconnect models."""

import pytest

from repro.memory.interconnect import ICILink, OCIConfig, OnChipInterconnect, RingTopology


class TestOCI:
    def test_transfer_cycles(self):
        oci = OnChipInterconnect(OCIConfig(bandwidth_bytes_per_cycle=1024, latency_cycles=10))
        assert oci.transfer_cycles(10240) == pytest.approx(10 + 10)

    def test_zero_bytes_free(self):
        oci = OnChipInterconnect()
        assert oci.transfer_cycles(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OCIConfig(bandwidth_bytes_per_cycle=0)
        with pytest.raises(ValueError):
            OnChipInterconnect().transfer_cycles(-1)


class TestICILink:
    def test_table1_bandwidth(self):
        link = ICILink()
        assert link.bandwidth_gbps == 100.0
        assert link.bytes_per_cycle == pytest.approx(100e9 / 1.05e9)

    def test_transfer_includes_latency(self):
        link = ICILink(latency_us=1.0)
        small = link.transfer_cycles(1)
        assert small >= link.latency_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            ICILink(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            ICILink().transfer_cycles(-1)


class TestRingTopology:
    def test_single_device_has_no_communication(self):
        ring = RingTopology(num_devices=1)
        assert ring.all_reduce_cycles(1 << 20) == 0.0
        assert ring.point_to_point_cycles(1 << 20) == 0.0

    def test_all_reduce_volume_formula(self):
        ring = RingTopology(num_devices=4, link=ICILink(latency_us=0.0))
        num_bytes = 4 * 2**20
        expected_steps = 2 * 3
        expected = expected_steps * (num_bytes / 4) / ring.link.bytes_per_cycle
        assert ring.all_reduce_cycles(num_bytes) == pytest.approx(expected)

    def test_all_gather_cheaper_than_all_reduce(self):
        ring = RingTopology(num_devices=4)
        payload = 1 << 20
        assert ring.all_gather_cycles(payload) < ring.all_reduce_cycles(payload)

    def test_all_reduce_grows_with_devices_due_to_latency(self):
        payload = 1 << 16
        two = RingTopology(num_devices=2).all_reduce_cycles(payload)
        eight = RingTopology(num_devices=8).all_reduce_cycles(payload)
        assert eight > two

    def test_validation(self):
        with pytest.raises(ValueError):
            RingTopology(num_devices=0)
        with pytest.raises(ValueError):
            RingTopology(num_devices=2).all_reduce_cycles(-1)
