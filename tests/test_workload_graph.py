"""Tests for the operator graph container."""

import pytest

from repro.workloads.graph import OperatorGraph
from repro.workloads.operators import LayerCategory, MatMulOp, SoftmaxOp


def make_matmul(name="mm", category=LayerCategory.QKV_GEN):
    return MatMulOp(name=name, category=category, m=4, k=8, n=16)


def make_softmax(name="sm"):
    return SoftmaxOp(name=name, category=LayerCategory.ATTENTION, rows=4, row_length=16)


class TestGraphConstruction:
    def test_add_returns_index(self):
        graph = OperatorGraph(name="g")
        assert graph.add(make_matmul()) == 0
        assert graph.add(make_softmax()) == 1
        assert len(graph) == 2

    def test_default_dependency_is_chain(self):
        graph = OperatorGraph(name="g")
        graph.add(make_matmul("a"))
        graph.add(make_matmul("b"))
        assert graph.predecessors(0) == []
        assert graph.predecessors(1) == [0]

    def test_explicit_dependencies(self):
        graph = OperatorGraph(name="g")
        graph.add(make_matmul("a"))
        graph.add(make_matmul("b"))
        graph.add(make_matmul("c"), depends_on=[0])
        assert graph.predecessors(2) == [0]

    def test_invalid_dependency_rejected(self):
        graph = OperatorGraph(name="g")
        graph.add(make_matmul("a"))
        with pytest.raises(ValueError):
            graph.add(make_matmul("b"), depends_on=[5])

    def test_predecessors_out_of_range(self):
        graph = OperatorGraph(name="g")
        with pytest.raises(IndexError):
            graph.predecessors(0)

    def test_extend_shifts_dependencies(self):
        a = OperatorGraph(name="a")
        a.add(make_matmul("a0"))
        b = OperatorGraph(name="b")
        b.add(make_matmul("b0"))
        b.add(make_matmul("b1"), depends_on=[0])
        a.extend(b)
        assert len(a) == 3
        assert a.predecessors(2) == [1]


class TestGraphSummaries:
    def make_graph(self):
        graph = OperatorGraph(name="g")
        graph.add(make_matmul("a", LayerCategory.QKV_GEN))
        graph.add(make_softmax())
        graph.add(make_matmul("b", LayerCategory.FFN1))
        return graph

    def test_matmul_and_vector_split(self):
        graph = self.make_graph()
        assert len(graph.matmul_operators) == 2
        assert len(graph.vector_operators) == 1

    def test_total_macs(self):
        graph = self.make_graph()
        assert graph.total_macs == 2 * 4 * 8 * 16

    def test_categories_in_first_appearance_order(self):
        graph = self.make_graph()
        assert graph.categories() == [LayerCategory.QKV_GEN, LayerCategory.ATTENTION,
                                      LayerCategory.FFN1]

    def test_by_category_groups(self):
        grouped = self.make_graph().by_category()
        assert len(grouped[LayerCategory.QKV_GEN]) == 1
        assert len(grouped[LayerCategory.ATTENTION]) == 1

    def test_scaled_repeats_operators(self):
        graph = self.make_graph()
        expanded = graph.scaled(3)
        assert len(expanded) == 3 * len(graph)
        assert expanded.total_macs == 3 * graph.total_macs

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            self.make_graph().scaled(0)

    def test_iteration_order(self):
        graph = self.make_graph()
        names = [op.name for op in graph]
        assert names == ["a", "sm", "b"]
