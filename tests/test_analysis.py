"""Tests for breakdowns, rooflines and report formatting."""

import pytest

from repro.analysis.breakdown import (
    compare_graph_results,
    latency_breakdown,
    mxu_energy_breakdown,
    overall_comparison,
)
from repro.analysis.report import (
    format_factor,
    format_joules,
    format_percent,
    format_seconds,
    format_table,
)
from repro.analysis.roofline import RooflineModel
from repro.core.results import GraphResult, OperatorResult
from repro.hw.energy import EnergyBudget
from repro.workloads.operators import LayerCategory, MatMulOp, SoftmaxOp


def make_result(name, category, seconds, mxu_energy):
    op = MatMulOp(name=name, category=category, m=2, k=2, n=2)
    energy = EnergyBudget()
    energy.add_dynamic("mxu", mxu_energy)
    return OperatorResult(operator=op, cycles=seconds * 1e9, seconds=seconds, energy=energy,
                          unit="mxu", bound="compute", utilization=0.5)


def make_graph(scale=1.0):
    graph = GraphResult(name="layer", tpu_name="chip")
    graph.operator_results.append(make_result("qkv", LayerCategory.QKV_GEN, 1.0 * scale, 4.0 * scale))
    graph.operator_results.append(make_result("attn", LayerCategory.ATTENTION, 2.0 * scale, 1.0 * scale))
    return graph


class TestBreakdowns:
    def test_latency_breakdown_sorted_desc(self):
        rows = latency_breakdown(make_graph())
        assert rows[0].category is LayerCategory.ATTENTION
        assert rows[0].fraction == pytest.approx(2.0 / 3.0)

    def test_energy_breakdown(self):
        rows = mxu_energy_breakdown(make_graph())
        assert rows[0].category is LayerCategory.QKV_GEN
        assert sum(r.fraction for r in rows) == pytest.approx(1.0)

    def test_compare_graph_results(self):
        baseline, candidate = make_graph(1.0), make_graph(0.5)
        rows = compare_graph_results(baseline, candidate)
        for row in rows:
            assert row.latency_change_percent == pytest.approx(-50.0)
            assert row.energy_reduction_factor == pytest.approx(2.0)

    def test_overall_comparison(self):
        headline = overall_comparison(make_graph(1.0), make_graph(0.5))
        assert headline["latency_change_percent"] == pytest.approx(-50.0)
        assert headline["mxu_energy_reduction_factor"] == pytest.approx(2.0)

    def test_comparison_handles_zero_candidate_energy(self):
        baseline = make_graph()
        empty = GraphResult(name="layer", tpu_name="chip")
        empty.operator_results.append(make_result("qkv", LayerCategory.QKV_GEN, 1.0, 0.0))
        rows = compare_graph_results(baseline, empty)
        assert rows[0].energy_reduction_factor == float("inf")


class TestRoofline:
    def setup_method(self):
        self.roofline = RooflineModel(peak_ops_per_s=100e12, memory_bandwidth_bytes_per_s=1e12)

    def test_ridge_point(self):
        assert self.roofline.ridge_point == pytest.approx(100.0)

    def test_attainable_clamped_at_peak(self):
        assert self.roofline.attainable(1e6) == 100e12
        assert self.roofline.attainable(1.0) == 1e12

    def test_classify_matmul_shapes(self):
        compute_heavy = MatMulOp(name="big", category=LayerCategory.FFN1,
                                 m=4096, k=4096, n=4096)
        memory_heavy = MatMulOp(name="gemv", category=LayerCategory.FFN1, m=1, k=4096, n=4096)
        assert self.roofline.classify(compute_heavy).is_compute_bound
        assert not self.roofline.classify(memory_heavy).is_compute_bound

    def test_execution_seconds_roofline_limited(self):
        op = MatMulOp(name="gemv", category=LayerCategory.FFN1, m=1, k=4096, n=4096)
        seconds = self.roofline.execution_seconds(op)
        memory_seconds = (op.weight_bytes + op.input_bytes + op.output_bytes) / 1e12
        assert seconds == pytest.approx(memory_seconds)

    def test_vector_op_supported(self):
        op = SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=128, row_length=128)
        assert self.roofline.execution_seconds(op, overhead_seconds=1e-6) > 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            RooflineModel(peak_ops_per_s=0, memory_bandwidth_bytes_per_s=1)
        with pytest.raises(ValueError):
            self.roofline.attainable(-1)
        with pytest.raises(ValueError):
            self.roofline.execution_seconds(
                SoftmaxOp(name="s", category=LayerCategory.ATTENTION, rows=1, row_length=1),
                overhead_seconds=-1)


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(0.024) == "+2.4%"
        assert format_percent(-0.299) == "-29.9%"

    def test_format_factor(self):
        assert format_factor(9.43) == "9.43x"

    def test_format_seconds_units(self):
        assert format_seconds(2.0).endswith(" s")
        assert format_seconds(2e-3).endswith(" ms")
        assert format_seconds(2e-6).endswith(" us")

    def test_format_joules_units(self):
        assert format_joules(2.0).endswith(" J")
        assert format_joules(2e-3).endswith(" mJ")
        assert format_joules(2e-6).endswith(" uJ")

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_validates_row_width(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
        with pytest.raises(ValueError):
            format_table([], [])

    def test_format_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)
        with pytest.raises(ValueError):
            format_joules(-1.0)
