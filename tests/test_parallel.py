"""Tests for tensor / pipeline parallelism and the multi-TPU system."""

import pytest

from repro.core.designs import cim_tpu_default, design_a, tpuv4i_baseline
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.memory.interconnect import ICILink, RingTopology
from repro.parallel.multi_device import MultiTPUSystem
from repro.parallel.pipeline_parallel import (
    PipelineParallelPlan,
    PipelineSchedule,
    build_pipeline_plan,
)
from repro.parallel.tensor_parallel import TensorParallelPlan, shard_layer_config
from repro.workloads.llm import LLMConfig
from repro.workloads.dit import DiTConfig
from repro.workloads.transformer import TransformerLayerConfig


class TestTensorParallel:
    def setup_method(self):
        self.layer = TransformerLayerConfig(d_model=4096, num_heads=32, d_ff=16384)

    def test_shard_divides_heads_and_ffn(self):
        shard = shard_layer_config(self.layer, 4)
        assert shard.num_heads == 8
        assert shard.d_ff == 4096
        assert shard.d_model == 4096

    def test_degree_one_is_identity(self):
        assert shard_layer_config(self.layer, 1) is self.layer

    def test_uneven_shard_rejected(self):
        with pytest.raises(ValueError):
            shard_layer_config(self.layer, 5)

    def test_allreduce_bytes(self):
        plan = TensorParallelPlan(degree=4, topology=RingTopology(num_devices=4))
        assert plan.allreduce_bytes_per_layer(1024, 4096) == 2 * 1024 * 4096

    def test_communication_zero_for_single_device(self):
        plan = TensorParallelPlan(degree=1, topology=RingTopology(num_devices=1))
        assert plan.communication_cycles_per_layer(1024, 4096) == 0.0

    def test_communication_grows_with_tokens(self):
        plan = TensorParallelPlan(degree=4, topology=RingTopology(num_devices=4))
        assert plan.communication_cycles_per_layer(2048, 4096) > \
            plan.communication_cycles_per_layer(1024, 4096)

    def test_degree_cannot_exceed_devices(self):
        with pytest.raises(ValueError):
            TensorParallelPlan(degree=8, topology=RingTopology(num_devices=4))


class TestPipelineParallel:
    def test_plan_layers_per_stage(self):
        plan = PipelineParallelPlan(num_stages=4, num_layers=48, micro_batches=8,
                                    topology=RingTopology(num_devices=4))
        assert plan.layers_per_stage == 12

    def test_bubble_fraction_shrinks_with_micro_batches(self):
        ring = RingTopology(num_devices=4)
        few = PipelineParallelPlan(4, 48, 4, ring).bubble_fraction
        many = PipelineParallelPlan(4, 48, 32, ring).bubble_fraction
        assert many < few

    def test_schedule_batch_latency(self):
        plan = PipelineParallelPlan(4, 48, 8, RingTopology(num_devices=4))
        schedule = PipelineSchedule(plan=plan, stage_seconds=1.0, hop_seconds=0.1)
        assert schedule.batch_latency() == pytest.approx((8 + 3) * 1.1)

    def test_decode_step_interval_overlaps_micro_batches(self):
        plan = PipelineParallelPlan(4, 48, 8, RingTopology(num_devices=4))
        schedule = PipelineSchedule(plan=plan, stage_seconds=1.0, hop_seconds=0.0)
        assert schedule.sequential_traversal_latency() == pytest.approx(4.0)
        assert schedule.decode_step_interval() == pytest.approx(1.0)

    def test_build_plan_clamps_stages_to_layers(self):
        plan = build_pipeline_plan(num_devices=8, num_layers=4, batch=8,
                                   topology=RingTopology(num_devices=8))
        assert plan.num_stages == 4

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            PipelineParallelPlan(8, 4, 1, RingTopology(num_devices=8))
        with pytest.raises(ValueError):
            PipelineParallelPlan(4, 48, 0, RingTopology(num_devices=4))


@pytest.fixture(scope="module")
def small_llm():
    return LLMConfig(name="mt-llm", num_layers=8, num_heads=16, d_model=2048, d_ff=8192)


@pytest.fixture(scope="module")
def small_dit():
    return DiTConfig(name="mt-dit", depth=8, num_heads=8, d_model=512)


@pytest.fixture(scope="module")
def small_llm_settings():
    return LLMInferenceSettings(batch=4, input_tokens=128, output_tokens=32, decode_kv_samples=2)


@pytest.fixture(scope="module")
def small_dit_settings():
    return DiTInferenceSettings(batch=2, image_resolution=256, sampling_steps=4)


class TestMultiTPUSystem:
    def test_llm_throughput_scales_with_devices(self, small_llm, small_llm_settings):
        results = [MultiTPUSystem(cim_tpu_default(), n).simulate_llm(small_llm, small_llm_settings)
                   for n in (1, 2, 4)]
        throughputs = [r.throughput for r in results]
        assert throughputs[1] > throughputs[0]
        assert throughputs[2] > throughputs[1]

    def test_dit_throughput_scales_with_devices(self, small_dit, small_dit_settings):
        one = MultiTPUSystem(cim_tpu_default(), 1).simulate_dit(small_dit, small_dit_settings)
        four = MultiTPUSystem(cim_tpu_default(), 4).simulate_dit(small_dit, small_dit_settings)
        assert four.throughput > 2 * one.throughput

    def test_single_device_has_no_communication(self, small_llm, small_llm_settings):
        result = MultiTPUSystem(cim_tpu_default(), 1).simulate_llm(small_llm, small_llm_settings)
        assert result.communication_seconds == 0.0

    def test_multi_device_has_communication(self, small_llm, small_llm_settings):
        result = MultiTPUSystem(cim_tpu_default(), 4).simulate_llm(small_llm, small_llm_settings)
        assert result.communication_seconds > 0.0

    def test_design_a_beats_baseline_llm_throughput(self, small_llm, small_llm_settings):
        base = MultiTPUSystem(tpuv4i_baseline(), 4).simulate_llm(small_llm, small_llm_settings)
        design = MultiTPUSystem(design_a(), 4).simulate_llm(small_llm, small_llm_settings)
        assert design.throughput > base.throughput
        assert design.mxu_energy_joules < base.mxu_energy_joules

    def test_energy_independent_of_device_count(self, small_llm, small_llm_settings):
        # The same total work is done regardless of how many devices share it.
        one = MultiTPUSystem(cim_tpu_default(), 1).simulate_llm(small_llm, small_llm_settings)
        four = MultiTPUSystem(cim_tpu_default(), 4).simulate_llm(small_llm, small_llm_settings)
        assert four.mxu_energy_joules == pytest.approx(one.mxu_energy_joules, rel=1e-6)

    def test_energy_per_item(self, small_llm, small_llm_settings):
        result = MultiTPUSystem(cim_tpu_default(), 2).simulate_llm(small_llm, small_llm_settings)
        assert result.energy_per_item == pytest.approx(
            result.mxu_energy_joules / result.items_per_group)

    def test_custom_link(self, small_llm, small_llm_settings):
        slow_link = ICILink(bandwidth_gbps=10.0)
        fast = MultiTPUSystem(cim_tpu_default(), 4).simulate_llm(small_llm, small_llm_settings)
        slow = MultiTPUSystem(cim_tpu_default(), 4, link=slow_link).simulate_llm(
            small_llm, small_llm_settings)
        assert slow.communication_seconds > fast.communication_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTPUSystem(cim_tpu_default(), 0)
