"""Tests for the Pareto co-design optimizer (`repro.optimize`)."""

import dataclasses

import pytest

from repro.optimize import (
    OBJECTIVE_REGISTRY,
    SEARCH_REGISTRY,
    Candidate,
    CandidateEvaluator,
    CodesignOptimizer,
    DesignSpace,
    Objective,
    bound_constraint,
    build_frontier,
    dominates,
    fit_constraint,
    get_objective,
    get_search,
    non_dominated,
    parse_constraint,
    register_objective,
    register_search,
    slo_constraint,
)
from repro.optimize.evaluator import CandidateResult
from repro.optimize.pareto import dominates_with_margin, frontier_fieldnames
from repro.optimize.search import SearchStrategy
from repro.sweep.export import to_csv, write_csv
from repro.sweep.store import ResultStore
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import LLAMA2_7B

SMALL_SPACE = DesignSpace(
    designs=("baseline", "design-a"),
    routers=("round-robin", "least-outstanding-requests"),
    replica_counts=(2, 3, 4))

FAST = dict(arrival_rate=24.0, num_requests=240, input_tokens=64,
            output_tokens=16, seed=7,
            objectives=("cost-per-million-tokens", "p99-ttft"))


def make_result(cache_key, **metrics):
    """A synthetic full-fidelity feasible result with given metrics."""
    base = dict(design="baseline", model="llama2-7b", precision="int8",
                scheduler="fcfs", router="round-robin", autoscaler="fixed",
                replicas=2, max_batch=32, arrival_rate=8.0, num_requests=100,
                fidelity="full", feasible=True, infeasibility="",
                total_devices=2, completed=100, rejected=0, slo_attainment=1.0,
                p99_ttft_s=0.1, p99_tpot_s=0.01, tokens_per_second=100.0,
                energy_per_token_joules=0.1, chip_hours=1.0,
                cost_per_million_tokens_dollars=2.0, utilisation=0.5,
                cache_key=cache_key)
    base.update(metrics)
    return CandidateResult(**base)


class TestDesignSpace:
    def test_expansion_is_deterministic_and_deduplicated(self):
        candidates = SMALL_SPACE.candidates()
        assert candidates == SMALL_SPACE.candidates()
        assert len(candidates) == len(set(candidates))
        # 2 designs x (x2, x3, x4 under 2 routers) = 12; no x1 dedup here.
        assert len(candidates) == 12

    def test_single_replica_candidates_collapse_policies(self):
        space = DesignSpace(designs=("baseline",),
                            routers=("round-robin", "session-affinity"),
                            autoscalers=("fixed", "queue-depth"),
                            replica_counts=(1,))
        candidates = space.candidates()
        assert len(candidates) == 1
        assert candidates[0].router == "round-robin"
        assert candidates[0].autoscaler == "fixed"

    def test_unknown_names_raise_structured_errors(self):
        with pytest.raises(KeyError, match="predefined designs"):
            DesignSpace(designs=("gpu",))
        with pytest.raises(KeyError, match="registered routers"):
            DesignSpace(designs=("baseline",), routers=("magic",))
        with pytest.raises(KeyError, match="registered autoscalers"):
            DesignSpace(designs=("baseline",), autoscalers=("magic",))
        with pytest.raises(KeyError, match="registered schedulers"):
            DesignSpace(designs=("baseline",), schedulers=("magic",))

    def test_empty_axes_and_bad_values_rejected(self):
        with pytest.raises(ValueError, match="designs"):
            DesignSpace(designs=())
        with pytest.raises(ValueError, match="replica_counts"):
            DesignSpace(designs=("baseline",), replica_counts=(0,))
        with pytest.raises(ValueError):
            DesignSpace(designs=("baseline",), precisions=("fp4",))

    def test_candidate_validation_and_spec(self):
        with pytest.raises(ValueError):
            Candidate(design="baseline", replicas=0)
        candidate = Candidate(design="baseline", replicas=3,
                              router="least-kv-pressure")
        spec = candidate.serving_spec(arrival_rate=10.0, num_requests=50, seed=3)
        assert spec.replicas == 3
        assert spec.router == "least-kv-pressure"
        assert spec.num_requests == 50
        assert "x3" in candidate.summary()


class TestObjectivesAndConstraints:
    def test_registry_covers_the_paper_objectives(self):
        for name in ("cost-per-million-tokens", "p99-ttft", "p99-tpot",
                     "energy-per-token", "chip-hours"):
            assert name in OBJECTIVE_REGISTRY

    def test_registry_covers_the_resilience_objectives(self):
        for name, attr in (("availability", "availability"),
                           ("recovery-s", "recovery_s"),
                           ("slo-debt", "slo_debt_s"),
                           ("goodput-under-failure",
                            "goodput_under_failure_tokens_per_second")):
            assert get_objective(name).attr == attr

    def test_unknown_objective_lists_registered_names(self):
        with pytest.raises(KeyError, match="registered objectives"):
            get_objective("latency")

    def test_duplicate_registration_rejected(self):
        objective = OBJECTIVE_REGISTRY["p99-ttft"]
        with pytest.raises(ValueError, match="already registered"):
            register_objective(objective)

    def test_max_objectives_negate_scores(self):
        throughput = get_objective("tokens-per-second")
        result = make_result("k", tokens_per_second=50.0)
        assert throughput.value(result) == 50.0
        assert throughput.score(result) == -50.0

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError, match="'min' or 'max'"):
            Objective(name="x", attr="chip_hours", direction="best",
                      unit="", description="")

    def test_parse_constraint_forms(self):
        slo = parse_constraint("slo>=0.9")
        assert slo.kind == "slo"
        assert slo.satisfied(make_result("k", slo_attainment=0.95))
        assert not slo.satisfied(make_result("k", slo_attainment=0.85))

        fit = parse_constraint("fit")
        assert fit.satisfied(make_result("k"))
        assert not fit.satisfied(make_result("k", feasible=False,
                                             infeasibility="too big"))

        bound = parse_constraint("p99-ttft<=0.5")
        assert bound.satisfied(make_result("k", p99_ttft_s=0.4))
        assert not bound.satisfied(make_result("k", p99_ttft_s=0.6))

    def test_parse_constraint_rejects_nonsense(self):
        with pytest.raises(ValueError, match="accepted forms"):
            parse_constraint("cheap and fast")
        with pytest.raises(ValueError, match="attainment floors"):
            parse_constraint("slo<=0.9")
        with pytest.raises(KeyError, match="registered objectives"):
            parse_constraint("latency<=0.5")
        with pytest.raises(ValueError, match="in \\(0, 1\\]"):
            slo_constraint(1.5)

    def test_bound_constraint_direct(self):
        constraint = bound_constraint("chip-hours", ">=", 0.5)
        assert constraint.satisfied(make_result("k", chip_hours=1.0))
        with pytest.raises(ValueError, match="operator"):
            bound_constraint("chip-hours", "==", 0.5)
        assert fit_constraint().kind == "fit"


class TestPareto:
    def test_dominance_definition(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (2.0, 2.0))  # ties never dominate

    def test_dominates_with_margin(self):
        # 10% margin: must be at least 10% better on every axis.
        assert dominates_with_margin((0.8, 0.8), (1.0, 1.0), 0.1)
        assert not dominates_with_margin((0.95, 0.8), (1.0, 1.0), 0.1)
        assert dominates_with_margin((0.95, 0.8), (1.0, 1.0), 0.0)

    def test_non_dominated_keeps_ties_and_frontier(self):
        objectives = (get_objective("cost-per-million-tokens"),
                      get_objective("p99-ttft"))
        cheap = make_result("cheap", cost_per_million_tokens_dollars=1.0,
                            p99_ttft_s=0.5)
        fast = make_result("fast", cost_per_million_tokens_dollars=3.0,
                           p99_ttft_s=0.05)
        beaten = make_result("beaten", cost_per_million_tokens_dollars=3.5,
                             p99_ttft_s=0.5)
        tie = make_result("tie", cost_per_million_tokens_dollars=1.0,
                          p99_ttft_s=0.5)
        front = non_dominated([cheap, fast, beaten, tie], objectives)
        assert cheap in front and fast in front and tie in front
        assert beaten not in front

    def test_build_frontier_orders_extremes_and_counts(self):
        objectives = (get_objective("cost-per-million-tokens"),
                      get_objective("p99-ttft"))
        cheap = make_result("cheap", cost_per_million_tokens_dollars=1.0,
                            p99_ttft_s=0.5)
        fast = make_result("fast", cost_per_million_tokens_dollars=3.0,
                           p99_ttft_s=0.05)
        beaten = make_result("beaten", cost_per_million_tokens_dollars=3.5,
                             p99_ttft_s=0.5)
        frontier = build_frontier([cheap, fast, beaten], objectives,
                                  model_name="llama2-7b", strategy="exhaustive",
                                  candidates=3)
        assert [p.result.cache_key for p in frontier.points] == ["cheap", "fast"]
        assert frontier.dominated == 1
        assert dict(frontier.extremes) == {
            "cost-per-million-tokens": "cheap", "p99-ttft": "fast"}
        # `beaten` is dominated by both frontier points.
        assert {p.result.cache_key: p.dominated_count
                for p in frontier.points} == {"cheap": 1, "fast": 1}

    def test_frontier_rows_export_as_csv(self):
        objectives = (get_objective("chip-hours"),)
        frontier = build_frontier([make_result("only")], objectives,
                                  model_name="llama2-7b", strategy="exhaustive")
        text = to_csv(frontier.rows(), fieldnames=frontier_fieldnames())
        assert "dominated_count" in text.splitlines()[0]
        assert len(text.splitlines()) == 2

    def test_empty_frontier_shape(self):
        frontier = build_frontier([], (get_objective("chip-hours"),),
                                  model_name="llama2-7b", strategy="exhaustive")
        assert len(frontier) == 0
        assert frontier.extremes == ()
        assert frontier.signature() == ()


class TestSearchRegistry:
    def test_builtin_strategies_registered(self):
        for name in ("exhaustive", "random", "successive-halving"):
            assert name in SEARCH_REGISTRY

    def test_unknown_strategy_lists_registered_names(self):
        with pytest.raises(KeyError, match="registered strategies"):
            get_search("bayesian")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_search(SEARCH_REGISTRY["exhaustive"])

    def test_custom_strategy_plugs_in(self):
        def first_only(context):
            return (context.evaluator.evaluate(context.candidates[0]),)

        register_search(SearchStrategy(name="first-only", description="",
                                       run=first_only))
        try:
            frontier = CodesignOptimizer(
                LLAMA2_7B, SMALL_SPACE, strategy="first-only", **FAST).run()
            assert len(frontier.points) == 1
            assert frontier.strategy == "first-only"
        finally:
            del SEARCH_REGISTRY["first-only"]


class TestEvaluator:
    def test_rejects_non_llm_models_and_bad_rates(self):
        with pytest.raises(ValueError, match="not an LLM"):
            CandidateEvaluator(DIT_XL_2, arrival_rate=8.0)
        with pytest.raises(ValueError, match="arrival_rate"):
            CandidateEvaluator(LLAMA2_7B, arrival_rate=0.0)

    def test_unknown_design_raises_structured_error(self):
        evaluator = CandidateEvaluator(LLAMA2_7B, arrival_rate=8.0,
                                       num_requests=40)
        with pytest.raises(KeyError, match="known designs"):
            evaluator.evaluate(Candidate(design="missing"))

    def test_fidelity_labels_and_counters(self):
        evaluator = CandidateEvaluator(LLAMA2_7B, arrival_rate=16.0,
                                       num_requests=80, input_tokens=64,
                                       output_tokens=16, seed=7)
        candidate = Candidate(design="baseline", replicas=2)
        short = evaluator.evaluate(candidate, num_requests=20)
        full = evaluator.evaluate(candidate)
        assert short.fidelity == "short" and short.num_requests == 20
        assert full.fidelity == "full" and full.num_requests == 80
        assert short.cache_key != full.cache_key
        assert evaluator.short_runs == 1 and evaluator.full_runs == 1

    def test_capacity_lower_bound_is_memoised_and_positive(self):
        evaluator = CandidateEvaluator(LLAMA2_7B, arrival_rate=64.0,
                                       num_requests=40, input_tokens=64,
                                       output_tokens=16)
        candidate = Candidate(design="baseline", replicas=1)
        bound = evaluator.capacity_lower_bound(candidate)
        assert bound >= 1
        assert evaluator.capacity_lower_bound(candidate) == bound

    def test_infeasible_rows_are_flat_and_excluded_from_frontiers(self):
        evaluator = CandidateEvaluator(LLAMA2_7B, arrival_rate=8.0,
                                       num_requests=40)
        row = evaluator.infeasible(Candidate(design="baseline"), "too big")
        assert not row.feasible
        assert row.infeasibility == "too big"
        assert dataclasses.asdict(row)  # flat: asdict never sees nesting


class TestGoldenEquivalence:
    """The acceptance property: halving == exhaustive, strictly cheaper."""

    @pytest.fixture(scope="class")
    def frontiers(self):
        exhaustive = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                       strategy="exhaustive", **FAST).run()
        halving = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                    strategy="successive-halving", **FAST).run()
        return exhaustive, halving

    def test_halving_finds_the_exhaustive_frontier(self, frontiers):
        exhaustive, halving = frontiers
        assert halving.signature() == exhaustive.signature()
        assert [p.values for p in halving.points] == [
            p.values for p in exhaustive.points]

    def test_halving_runs_strictly_fewer_full_simulations(self, frontiers):
        exhaustive, halving = frontiers
        assert exhaustive.full_runs == len(SMALL_SPACE.candidates())
        assert halving.full_runs < exhaustive.full_runs
        assert halving.short_runs == len(SMALL_SPACE.candidates())

    def test_frontier_is_reproducible(self, frontiers):
        exhaustive, _ = frontiers
        again = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                  strategy="exhaustive", **FAST).run()
        assert again.signature() == exhaustive.signature()
        assert again.points == exhaustive.points


class TestPersistentSearch:
    def test_warm_store_search_simulates_nothing(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cold = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                 strategy="successive-halving",
                                 store=ResultStore(path), **FAST).run()
        assert cold.full_runs + cold.short_runs > 0

        warm = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                 strategy="successive-halving",
                                 store=ResultStore(path), **FAST).run()
        assert warm.full_runs + warm.short_runs == 0
        assert warm.store_served > 0
        assert warm.signature() == cold.signature()
        assert warm.points == cold.points  # bit-for-bit frontier

    def test_undecodable_store_payload_counts_as_a_simulation(self, tmp_path):
        # A record written under the current STORE_VERSION whose payload no
        # longer decodes (the forgot-to-bump drift case) forces a real
        # recompute — the accounting must report a run, not a store hit,
        # or "new simulations: 0" lies exactly when drift happens.
        import json

        from repro.optimize.evaluator import CandidateEvaluator

        path = tmp_path / "store.jsonl"
        evaluator = CandidateEvaluator(LLAMA2_7B, arrival_rate=16.0,
                                       num_requests=40, input_tokens=64,
                                       output_tokens=16, seed=7,
                                       store=ResultStore(path))
        candidate = Candidate(design="baseline", replicas=2)
        evaluator.evaluate(candidate)
        assert evaluator.full_runs == 1

        # Corrupt the stored payload in place (same version, unusable body).
        records = [json.loads(line)
                   for line in path.read_text().splitlines() if line.strip()]
        for record in records:
            record["value"] = {"drifted": True}
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n",
                        encoding="utf-8")

        drifted = CandidateEvaluator(LLAMA2_7B, arrival_rate=16.0,
                                     num_requests=40, input_tokens=64,
                                     output_tokens=16, seed=7,
                                     store=ResultStore(path))
        result = drifted.evaluate(candidate)
        assert result.feasible
        assert drifted.full_runs == 1
        assert drifted.store_served == 0

    def test_store_is_shared_across_strategies(self, tmp_path):
        path = tmp_path / "store.jsonl"
        CodesignOptimizer(LLAMA2_7B, SMALL_SPACE, strategy="exhaustive",
                          store=ResultStore(path), **FAST).run()
        halving = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                    strategy="successive-halving",
                                    store=ResultStore(path), **FAST).run()
        # Full-fidelity evaluations are already stored; only the short
        # pruning traces are new work.
        assert halving.full_runs == 0


class TestOptimizerPolicies:
    def test_random_strategy_is_seeded_and_budgeted(self):
        kwargs = dict(FAST, strategy="random", budget=4)
        first = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE, **kwargs).run()
        second = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE, **kwargs).run()
        assert first.full_runs == 4
        assert first.signature() == second.signature()

    def test_random_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="positive budget"):
            CodesignOptimizer(LLAMA2_7B, SMALL_SPACE, strategy="random",
                              budget=0, **FAST).run()

    def test_random_without_budget_prices_the_whole_space(self):
        # "--budget default: unlimited" must mean unlimited: no budget =
        # every candidate priced, i.e. the exhaustive frontier.
        unlimited = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                      strategy="random", **FAST).run()
        exhaustive = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                       strategy="exhaustive", **FAST).run()
        assert unlimited.full_runs == len(SMALL_SPACE.candidates())
        assert unlimited.signature() == exhaustive.signature()

    def test_provenance_buckets_partition_the_space(self):
        for strategy, budget in (("exhaustive", None),
                                 ("successive-halving", None),
                                 ("random", 4)):
            frontier = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                         strategy=strategy, budget=budget,
                                         **FAST).run()
            assert (len(frontier.points) + frontier.dominated
                    + frontier.constraint_filtered + frontier.infeasible
                    + frontier.strategy_pruned) == frontier.candidates

    def test_constraints_filter_the_frontier(self):
        unconstrained = CodesignOptimizer(LLAMA2_7B, SMALL_SPACE,
                                          strategy="exhaustive", **FAST).run()
        constrained = CodesignOptimizer(
            LLAMA2_7B, SMALL_SPACE, strategy="exhaustive",
            constraints=(parse_constraint("slo>=0.99"),), **FAST).run()
        assert all(p.result.slo_attainment >= 0.99 for p in constrained.points)
        assert constrained.constraint_filtered > 0
        assert len(constrained) <= len(unconstrained)

    def test_slo_constraint_triggers_capacity_pruning(self):
        space = DesignSpace(designs=("baseline",), replica_counts=(1, 2, 3))
        frontier = CodesignOptimizer(
            LLAMA2_7B, space, strategy="exhaustive",
            constraints=(parse_constraint("slo>=0.5"),),
            arrival_rate=64.0, num_requests=120, input_tokens=64,
            output_tokens=16, seed=7,
            objectives=("cost-per-million-tokens",)).run()
        assert frontier.capacity_pruned > 0
        assert frontier.infeasible >= frontier.capacity_pruned
        disabled = CodesignOptimizer(
            LLAMA2_7B, space, strategy="exhaustive",
            constraints=(parse_constraint("slo>=0.5"),),
            arrival_rate=64.0, num_requests=120, input_tokens=64,
            output_tokens=16, seed=7,
            objectives=("cost-per-million-tokens",),
            use_capacity_bound=False).run()
        assert disabled.capacity_pruned == 0

    def test_needs_at_least_one_objective(self):
        with pytest.raises(ValueError, match="at least one objective"):
            CodesignOptimizer(LLAMA2_7B, SMALL_SPACE, objectives=())

    def test_frontier_json_and_csv_round_trip(self, tmp_path):
        frontier = CodesignOptimizer(
            LLAMA2_7B, DesignSpace(designs=("baseline",), replica_counts=(2,)),
            strategy="exhaustive", **FAST).run()
        payload = frontier.to_dict()
        assert tuple(payload["objectives"]) == ("cost-per-million-tokens",
                                                "p99-ttft")
        assert payload["points"][0]["dominated_count"] == 0
        path = write_csv(frontier.rows(), tmp_path / "frontier.csv",
                         fieldnames=frontier_fieldnames())
        header = path.read_text().splitlines()[0]
        assert "cost_per_million_tokens_dollars" in header
        assert "dominated_count" in header
