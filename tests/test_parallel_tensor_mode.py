"""Tests for the tensor-parallel serving mode of MultiTPUSystem."""

import pytest

from repro.core.designs import cim_tpu_default
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.parallel.multi_device import MultiTPUSystem
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig


@pytest.fixture(scope="module")
def llm():
    return LLMConfig(name="tp-llm", num_layers=8, num_heads=16, d_model=2048, d_ff=8192)


@pytest.fixture(scope="module")
def settings():
    return LLMInferenceSettings(batch=4, input_tokens=128, output_tokens=32, decode_kv_samples=2)


class TestTensorParallelLLM:
    def test_tensor_mode_produces_result(self, llm, settings):
        system = MultiTPUSystem(cim_tpu_default(), 4, parallelism="tensor")
        result = system.simulate_llm(llm, settings)
        assert result.throughput > 0
        assert result.communication_seconds > 0

    def test_tensor_mode_single_device_equals_pipeline(self, llm, settings):
        tensor = MultiTPUSystem(cim_tpu_default(), 1, parallelism="tensor").simulate_llm(llm, settings)
        pipeline = MultiTPUSystem(cim_tpu_default(), 1, parallelism="pipeline").simulate_llm(llm, settings)
        assert tensor.stage_occupancy_seconds == pytest.approx(pipeline.stage_occupancy_seconds)

    def test_tensor_mode_throughput_improves_with_devices(self, llm, settings):
        one = MultiTPUSystem(cim_tpu_default(), 1, parallelism="tensor").simulate_llm(llm, settings)
        four = MultiTPUSystem(cim_tpu_default(), 4, parallelism="tensor").simulate_llm(llm, settings)
        assert four.throughput > one.throughput

    def test_tensor_mode_pays_allreduce_communication(self, llm, settings):
        tensor = MultiTPUSystem(cim_tpu_default(), 4, parallelism="tensor").simulate_llm(llm, settings)
        pipeline = MultiTPUSystem(cim_tpu_default(), 4, parallelism="pipeline").simulate_llm(llm, settings)
        # Two all-reduces per layer per token are far costlier than one
        # activation hop per stage boundary.
        assert tensor.communication_seconds > pipeline.communication_seconds

    def test_uneven_shard_rejected(self, settings):
        odd = LLMConfig(name="odd-llm", num_layers=4, num_heads=6, d_model=768, d_ff=3072)
        system = MultiTPUSystem(cim_tpu_default(), 4, parallelism="tensor")
        with pytest.raises(ValueError):
            system.simulate_llm(odd, settings)

    def test_unknown_parallelism_rejected(self):
        with pytest.raises(ValueError):
            MultiTPUSystem(cim_tpu_default(), 2, parallelism="expert")

    def test_dit_rejects_tensor_mode(self, settings):
        system = MultiTPUSystem(cim_tpu_default(), 2, parallelism="tensor")
        dit = DiTConfig(name="tp-dit", depth=4, num_heads=4, d_model=256)
        with pytest.raises(ValueError):
            system.simulate_dit(dit, DiTInferenceSettings(batch=1, image_resolution=256,
                                                          sampling_steps=1))
