"""Tests for memory-capacity planning."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.capacity import (
    ModelFootprint,
    dit_footprint,
    fleet_lower_bound,
    llm_footprint,
    llm_weight_bytes,
    plan_capacity,
    serving_kv_budget,
)
from repro.common import Precision
from repro.core.designs import tpuv4i_baseline
from repro.workloads.chat import RequestClass
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import GPT3_30B, LLAMA2_7B, LLMConfig


class TestFootprints:
    def test_gpt3_30b_weights_around_30_gb_int8(self):
        footprint = llm_footprint(GPT3_30B, batch=8, context_tokens=1536)
        assert 25 * 2**30 < footprint.weight_bytes < 35 * 2**30

    def test_kv_cache_scales_with_batch_and_context(self):
        small = llm_footprint(GPT3_30B, batch=1, context_tokens=512)
        large = llm_footprint(GPT3_30B, batch=8, context_tokens=1024)
        assert large.kv_cache_bytes == 16 * small.kv_cache_bytes

    def test_bf16_doubles_weights(self):
        int8 = llm_footprint(LLAMA2_7B, batch=1, context_tokens=512, precision=Precision.INT8)
        bf16 = llm_footprint(LLAMA2_7B, batch=1, context_tokens=512, precision=Precision.BF16)
        assert bf16.weight_bytes == 2 * int8.weight_bytes

    def test_dit_has_no_kv_cache(self):
        footprint = dit_footprint(DIT_XL_2, batch=8)
        assert footprint.kv_cache_bytes == 0
        assert footprint.weight_bytes > 0

    def test_dit_weights_under_a_gigabyte_int8(self):
        # DiT-XL/2 is a ~675 M parameter model.
        footprint = dit_footprint(DIT_XL_2, batch=1)
        assert footprint.weight_bytes < 2**30

    def test_total_and_gib(self):
        footprint = ModelFootprint("m", weight_bytes=2**30, kv_cache_bytes=2**29,
                                   activation_bytes=2**29)
        assert footprint.total_bytes == 2 * 2**30
        assert footprint.total_gib == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelFootprint("m", weight_bytes=-1, kv_cache_bytes=0, activation_bytes=0)
        with pytest.raises(ValueError):
            llm_footprint(GPT3_30B, batch=0, context_tokens=10)
        with pytest.raises(ValueError):
            dit_footprint(DIT_XL_2, batch=1, image_resolution=0)


class TestCapacityPlan:
    def test_gpt3_30b_needs_multiple_tpuv4i(self):
        footprint = llm_footprint(GPT3_30B, batch=8, context_tokens=1536)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert not plan.fits_single_device
        assert plan.min_devices >= 4
        assert plan.suggested_parallelism == "pipeline"

    def test_dit_fits_one_device(self):
        footprint = dit_footprint(DIT_XL_2, batch=8)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert plan.fits_single_device
        assert plan.min_devices == 1
        assert plan.suggested_parallelism == "single-device"

    def test_kv_dominated_footprint_suggests_tensor_parallelism(self):
        footprint = ModelFootprint("kv-heavy", weight_bytes=4 * 2**30,
                                   kv_cache_bytes=20 * 2**30, activation_bytes=0)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert plan.suggested_parallelism == "tensor"

    def test_memory_per_device(self):
        footprint = ModelFootprint("m", weight_bytes=16 * 2**30, kv_cache_bytes=0,
                                   activation_bytes=0)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert plan.memory_per_device_bytes == pytest.approx(
            footprint.total_bytes / plan.min_devices)

    def test_utilisation_bound_validation(self):
        footprint = dit_footprint(DIT_XL_2, batch=1)
        with pytest.raises(ValueError):
            plan_capacity(footprint, tpuv4i_baseline(), memory_utilisation=0.0)


class TestServingKvBudget:
    def test_budget_below_usable_memory(self):
        budget = serving_kv_budget(LLAMA2_7B, tpuv4i_baseline())
        usable = int(tpuv4i_baseline().main_memory_bytes * 0.9)
        assert budget < usable
        assert budget == usable - llm_weight_bytes(LLAMA2_7B) - 2 * 32 * (
            LLAMA2_7B.d_model + LLAMA2_7B.d_ff)

    def test_non_positive_when_weights_exceed_memory(self):
        assert serving_kv_budget(GPT3_30B, tpuv4i_baseline(), devices=1) < 0

    def test_devices_widen_the_budget(self):
        one = serving_kv_budget(LLAMA2_7B, tpuv4i_baseline(), devices=1)
        four = serving_kv_budget(LLAMA2_7B, tpuv4i_baseline(), devices=4)
        assert four > one

    def test_validation(self):
        with pytest.raises(ValueError):
            serving_kv_budget(LLAMA2_7B, tpuv4i_baseline(), devices=0)
        with pytest.raises(ValueError):
            serving_kv_budget(LLAMA2_7B, tpuv4i_baseline(), memory_utilisation=0.0)


# --------------------------------------------------------------- properties
#: Small-but-varied model shapes for the property tests.
model_configs = st.builds(
    LLMConfig,
    name=st.just("prop-llm"),
    num_layers=st.integers(min_value=1, max_value=48),
    num_heads=st.sampled_from([8, 16, 32, 56]),
    d_model=st.sampled_from([512, 1024, 4096, 7168]),
    d_ff=st.sampled_from([2048, 8192, 28672]),
    vocab_size=st.sampled_from([1000, 32000]),
    head_dim=st.sampled_from([32, 64, 128]),  # decoupled from d_model/num_heads
)


class TestCapacityProperties:
    @given(model=model_configs,
           batch=st.integers(min_value=1, max_value=32),
           shorter=st.integers(min_value=1, max_value=30_000),
           extra=st.integers(min_value=1, max_value=30_000))
    @settings(max_examples=60, deadline=None)
    def test_min_devices_monotone_in_context_length(self, model, batch, shorter, extra):
        """Growing the context can never shrink the deployment."""
        tpu = tpuv4i_baseline()
        small = plan_capacity(llm_footprint(model, batch, shorter), tpu)
        large = plan_capacity(llm_footprint(model, batch, shorter + extra), tpu)
        assert large.min_devices >= small.min_devices

    @given(model=model_configs,
           devices=st.integers(min_value=1, max_value=16),
           max_batch=st.integers(min_value=1, max_value=64),
           contexts=st.lists(st.integers(min_value=1, max_value=32768),
                             min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_admission_never_exceeds_hbm(self, model, devices, max_batch, contexts):
        """The scheduler's greedy reservation rule keeps every admitted batch
        (weights + committed KV + decode working set) within device memory."""
        tpu = tpuv4i_baseline()
        utilisation = 0.9
        budget = serving_kv_budget(model, tpu, devices=devices, max_batch=max_batch,
                                   precision=Precision.INT8,
                                   memory_utilisation=utilisation)
        # A non-positive budget means the engine refuses to serve at all.
        assume(budget > 0)
        per_token = model.kv_cache_bytes(1, 1)
        reserved = 0
        admitted = 0
        for context in contexts:  # the engine's admission rule, verbatim
            if admitted >= max_batch:
                break
            need = context * per_token
            if reserved + need > budget:
                break
            reserved += need
            admitted += 1
        working_set = 2 * max_batch * (model.d_model + model.d_ff)
        footprint = llm_weight_bytes(model) + reserved + working_set
        assert footprint <= devices * int(tpu.main_memory_bytes * utilisation)


class TestPlanFleet:
    """Fleet sizing: smallest replica count meeting an SLO at a rate."""

    MODEL = LLMConfig(name="fleet-test-llm", num_layers=4, num_heads=16,
                      d_model=2048, d_ff=8192, vocab_size=32000)
    MIX = (RequestClass(input_tokens=64, output_tokens=16),)

    def plan(self, **overrides):
        from repro.analysis.capacity import plan_fleet
        from repro.serving.metrics import SLO

        kwargs = dict(arrival_rate=10.0, slo=SLO(ttft_s=2.0, tpot_s=0.2),
                      request_classes=self.MIX, attainment_target=0.9,
                      max_replicas=6, num_requests=60, seed=3)
        kwargs.update(overrides)
        return plan_fleet(self.MODEL, tpuv4i_baseline(), **kwargs)

    def test_easy_load_needs_one_replica(self):
        plan = self.plan(arrival_rate=2.0)
        assert plan.met
        assert plan.replicas == 1
        assert plan.evaluations[-1].slo_attainment >= 0.9

    def test_plan_records_every_evaluation(self):
        plan = self.plan()
        counts = [evaluation.replicas for evaluation in plan.evaluations]
        assert counts == sorted(counts)
        assert len(set(counts)) == len(counts)
        if plan.met:
            assert plan.replicas == counts[-1]

    def test_impossible_target_reports_unmet(self):
        from repro.serving.metrics import SLO

        # A TPOT target below one decode step can never be met.
        plan = self.plan(slo=SLO(ttft_s=1e-6, tpot_s=1e-6), max_replicas=2)
        assert not plan.met
        assert plan.replicas is None
        assert plan.evaluations  # the tried fleets are still reported

    def test_capacity_lower_bound_skips_hopeless_fleets(self):
        heavy = self.plan(arrival_rate=2000.0, max_replicas=10)
        assert heavy.evaluations[0].replicas > 1

    def test_fleet_lower_bound_monotone_in_rate(self):
        # The extracted estimate plan_fleet searches from (and the co-design
        # optimizer prunes with): positive, monotone in the offered rate.
        slow = fleet_lower_bound(LLAMA2_7B, tpuv4i_baseline(), arrival_rate=1.0)
        fast = fleet_lower_bound(LLAMA2_7B, tpuv4i_baseline(),
                                 arrival_rate=2000.0)
        assert slow >= 1
        assert fast > slow
        with pytest.raises(ValueError, match="arrival_rate"):
            fleet_lower_bound(LLAMA2_7B, tpuv4i_baseline(), arrival_rate=0.0)

    def test_fleet_lower_bound_matches_plan_fleet_start(self):
        plan = self.plan(arrival_rate=2000.0, max_replicas=10)
        bound = fleet_lower_bound(self.MODEL, tpuv4i_baseline(),
                                  arrival_rate=2000.0, request_classes=self.MIX)
        assert plan.evaluations[0].replicas == min(bound, 10)

    def test_validation(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            self.plan(arrival_rate=0.0)
        with pytest.raises(ValueError, match="max_replicas"):
            self.plan(max_replicas=0)
        with pytest.raises(ValueError, match="attainment_target"):
            self.plan(attainment_target=1.5)
