"""Tests for memory-capacity planning."""

import pytest

from repro.analysis.capacity import (
    ModelFootprint,
    dit_footprint,
    llm_footprint,
    plan_capacity,
)
from repro.common import Precision
from repro.core.designs import tpuv4i_baseline
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import GPT3_30B, LLAMA2_7B


class TestFootprints:
    def test_gpt3_30b_weights_around_30_gb_int8(self):
        footprint = llm_footprint(GPT3_30B, batch=8, context_tokens=1536)
        assert 25 * 2**30 < footprint.weight_bytes < 35 * 2**30

    def test_kv_cache_scales_with_batch_and_context(self):
        small = llm_footprint(GPT3_30B, batch=1, context_tokens=512)
        large = llm_footprint(GPT3_30B, batch=8, context_tokens=1024)
        assert large.kv_cache_bytes == 16 * small.kv_cache_bytes

    def test_bf16_doubles_weights(self):
        int8 = llm_footprint(LLAMA2_7B, batch=1, context_tokens=512, precision=Precision.INT8)
        bf16 = llm_footprint(LLAMA2_7B, batch=1, context_tokens=512, precision=Precision.BF16)
        assert bf16.weight_bytes == 2 * int8.weight_bytes

    def test_dit_has_no_kv_cache(self):
        footprint = dit_footprint(DIT_XL_2, batch=8)
        assert footprint.kv_cache_bytes == 0
        assert footprint.weight_bytes > 0

    def test_dit_weights_under_a_gigabyte_int8(self):
        # DiT-XL/2 is a ~675 M parameter model.
        footprint = dit_footprint(DIT_XL_2, batch=1)
        assert footprint.weight_bytes < 2**30

    def test_total_and_gib(self):
        footprint = ModelFootprint("m", weight_bytes=2**30, kv_cache_bytes=2**29,
                                   activation_bytes=2**29)
        assert footprint.total_bytes == 2 * 2**30
        assert footprint.total_gib == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelFootprint("m", weight_bytes=-1, kv_cache_bytes=0, activation_bytes=0)
        with pytest.raises(ValueError):
            llm_footprint(GPT3_30B, batch=0, context_tokens=10)
        with pytest.raises(ValueError):
            dit_footprint(DIT_XL_2, batch=1, image_resolution=0)


class TestCapacityPlan:
    def test_gpt3_30b_needs_multiple_tpuv4i(self):
        footprint = llm_footprint(GPT3_30B, batch=8, context_tokens=1536)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert not plan.fits_single_device
        assert plan.min_devices >= 4
        assert plan.suggested_parallelism == "pipeline"

    def test_dit_fits_one_device(self):
        footprint = dit_footprint(DIT_XL_2, batch=8)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert plan.fits_single_device
        assert plan.min_devices == 1
        assert plan.suggested_parallelism == "single-device"

    def test_kv_dominated_footprint_suggests_tensor_parallelism(self):
        footprint = ModelFootprint("kv-heavy", weight_bytes=4 * 2**30,
                                   kv_cache_bytes=20 * 2**30, activation_bytes=0)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert plan.suggested_parallelism == "tensor"

    def test_memory_per_device(self):
        footprint = ModelFootprint("m", weight_bytes=16 * 2**30, kv_cache_bytes=0,
                                   activation_bytes=0)
        plan = plan_capacity(footprint, tpuv4i_baseline())
        assert plan.memory_per_device_bytes == pytest.approx(
            footprint.total_bytes / plan.min_devices)

    def test_utilisation_bound_validation(self):
        footprint = dit_footprint(DIT_XL_2, batch=1)
        with pytest.raises(ValueError):
            plan_capacity(footprint, tpuv4i_baseline(), memory_utilisation=0.0)
