"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    exit_code = main(list(argv))
    captured = capsys.readouterr()
    return exit_code, captured.out


SMALL = ["--batch", "2", "--input-tokens", "64", "--output-tokens", "16",
         "--resolution", "256", "--steps", "2"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults_match_paper_settings(self):
        args = build_parser().parse_args(["explore"])
        assert args.batch == 8
        assert args.input_tokens == 1024
        assert args.output_tokens == 512
        assert args.resolution == 512

    def test_multi_device_options(self):
        args = build_parser().parse_args(["multi-device", "--devices", "1", "2",
                                          "--parallelism", "tensor"])
        assert args.devices == [1, 2]
        assert args.parallelism == "tensor"


class TestCompare:
    def test_compare_runs_and_prints_table(self, capsys):
        code, out = run_cli(capsys, *SMALL, "compare", "--design", "cim-default")
        assert code == 0
        assert "Baseline TPUv4i vs. cim-default" in out
        assert "decode layer" in out

    def test_compare_unknown_design_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(SMALL + ["compare", "--design", "gpu"])

    def test_compare_rejects_non_llm_model(self):
        with pytest.raises(SystemExit):
            main(SMALL + ["--llm", "dit-xl-2", "compare"])


class TestExplore:
    def test_explore_runs_and_prints_table(self, capsys):
        code, out = run_cli(capsys, *SMALL, "explore")
        assert code == 0
        assert "design-space exploration" in out
        assert "baseline" in out

    def test_explore_honours_global_llm_flag(self, capsys):
        """Regression: ``--llm`` used to be silently ignored by ``explore``."""
        _, default_out = run_cli(capsys, *SMALL, "--llm", "gpt3-30b", "explore")
        _, llama_out = run_cli(capsys, *SMALL, "--llm", "llama2-7b", "explore")
        assert default_out != llama_out  # a different model gives different latencies

    def test_explore_rejects_non_llm_model(self):
        with pytest.raises(SystemExit, match="not an LLM"):
            main(SMALL + ["--llm", "dit-xl-2", "explore"])

    def test_explore_with_workers(self, capsys):
        code, out = run_cli(capsys, *SMALL, "explore", "--workers", "2")
        assert code == 0
        assert "design-space exploration" in out


class TestSweep:
    def test_sweep_runs_and_reports_cache_stats(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "gpt3-30b", "dit-xl-2",
                            "--designs", "baseline", "design-a",
                            "--precisions", "int8", "--batches", "2")
        assert code == 0
        assert "Scenario sweep" in out
        assert "graph simulations" in out
        assert "dit-xl-2" in out

    def test_sweep_exports_json_and_csv(self, capsys, tmp_path):
        json_path = tmp_path / "rows.json"
        csv_path = tmp_path / "rows.csv"
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "gpt3-30b",
                            "--designs", "baseline", "--precisions", "int8",
                            "--batches", "2", "--json", str(json_path),
                            "--csv", str(csv_path))
        assert code == 0
        assert json_path.exists() and csv_path.exists()
        assert "latency_seconds" in json_path.read_text()
        assert csv_path.read_text().startswith("design,")

    def test_sweep_multi_device_axis(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "llama2-7b",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2", "--devices", "1", "2")
        assert code == 0
        assert out.count("llama2-7b") >= 2

    def test_sweep_tensor_parallelism_skips_dit_models(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "llama2-7b", "dit-xl-2",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2", "--devices", "2", "--parallelism", "tensor")
        assert code == 0
        assert "skipping DiT models" in out
        assert "llama2-7b" in out

    def test_sweep_tensor_parallelism_with_only_dit_fails(self):
        with pytest.raises(SystemExit, match="only modelled for LLM"):
            main(SMALL + ["sweep", "--models", "dit-xl-2", "--designs", "design-a",
                          "--precisions", "int8", "--batches", "2",
                          "--devices", "2", "--parallelism", "tensor"])

    def test_sweep_unwritable_export_path_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot write results"):
            main(SMALL + ["sweep", "--models", "gpt3-30b", "--designs", "baseline",
                          "--precisions", "int8", "--batches", "2",
                          "--json", str(tmp_path / "missing-dir" / "rows.json")])

    def test_sweep_unknown_design_fails(self):
        with pytest.raises(SystemExit, match="unknown design"):
            main(SMALL + ["sweep", "--designs", "gpu"])

    def test_sweep_unknown_model_fails(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(SMALL + ["sweep", "--models", "gpt5"])

    def test_sweep_parser_defaults_cover_registry(self):
        args = build_parser().parse_args(["sweep"])
        assert "gpt3-175b" in args.models and "mixtral-8x7b" in args.models
        assert "dit-xl-2" in args.models
        assert set(args.precisions) == {"int8", "bf16"}
        assert args.batches == [1, 8]
        assert args.scenarios is None  # default: per-model scenarios

    def test_sweep_explicit_scenarios(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "llama2-7b", "dit-xl-2",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2",
                            "--scenarios", "chat-serving", "dit-sampling")
        assert code == 0
        assert "chat-serving" in out
        assert "dit-sampling" in out

    def test_sweep_moe_model_uses_moe_scenario(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "mixtral-8x7b",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2")
        assert code == 0
        assert "moe-serving" in out

    def test_sweep_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(SMALL + ["sweep", "--scenarios", "training"])

    def test_sweep_tensor_parallelism_skips_moe_models(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "mixtral-8x7b",
                            "llama2-7b", "--designs", "design-a",
                            "--precisions", "int8", "--batches", "2",
                            "--devices", "2", "--parallelism", "tensor")
        assert code == 0
        assert "without a tensor-parallel scenario" in out
        assert "llama2-7b" in out

    def test_sweep_tensor_parallelism_skips_unshardable_scenarios(self, capsys):
        # chat-serving declares tensor support, but an MoE model cannot be
        # sharded, so the shard probe drops it instead of aborting mid-sweep.
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "mixtral-8x7b",
                            "llama2-7b", "--designs", "design-a",
                            "--precisions", "int8", "--batches", "2",
                            "--scenarios", "chat-serving",
                            "--devices", "2", "--parallelism", "tensor")
        assert code == 0
        assert "without a tensor-parallel scenario" in out
        assert "mixtral-8x7b" in out
        assert "chat-serving" in out


class TestMultiDevice:
    def test_pipeline_parallel(self, capsys):
        code, out = run_cli(capsys, *SMALL, "--llm", "llama2-7b",
                            "multi-device", "--design", "design-a", "--devices", "1", "2")
        assert code == 0
        assert "tokens/s" in out
        assert "pipeline parallel" in out

    def test_tensor_parallel(self, capsys):
        code, out = run_cli(capsys, *SMALL, "--llm", "llama2-7b",
                            "multi-device", "--design", "design-a", "--devices", "2",
                            "--parallelism", "tensor")
        assert code == 0
        assert "tensor parallel" in out


class TestModels:
    def test_models_listing(self, capsys):
        code, out = run_cli(capsys, *SMALL, "models")
        assert code == 0
        assert "gpt3-30b" in out
        assert "dit-xl-2" in out
        assert "min TPUs" in out

    def test_models_listing_includes_moe(self, capsys):
        code, out = run_cli(capsys, *SMALL, "models")
        assert code == 0
        assert "mixtral-8x7b" in out
        assert "MoE" in out
        assert "default scenario" in out


class TestScenarios:
    def test_scenarios_listing(self, capsys):
        code, out = run_cli(capsys, "scenarios")
        assert code == 0
        for name in ("llm-serving", "dit-sampling", "moe-serving", "chat-serving"):
            assert name in out
        assert "tensor-parallel" in out
