"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    exit_code = main(list(argv))
    captured = capsys.readouterr()
    return exit_code, captured.out


SMALL = ["--batch", "2", "--input-tokens", "64", "--output-tokens", "16",
         "--resolution", "256", "--steps", "2"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults_match_paper_settings(self):
        args = build_parser().parse_args(["explore"])
        assert args.batch == 8
        assert args.input_tokens == 1024
        assert args.output_tokens == 512
        assert args.resolution == 512

    def test_multi_device_options(self):
        args = build_parser().parse_args(["multi-device", "--devices", "1", "2",
                                          "--parallelism", "tensor"])
        assert args.devices == [1, 2]
        assert args.parallelism == "tensor"


class TestCompare:
    def test_compare_runs_and_prints_table(self, capsys):
        code, out = run_cli(capsys, *SMALL, "compare", "--design", "cim-default")
        assert code == 0
        assert "Baseline TPUv4i vs. cim-default" in out
        assert "decode layer" in out

    def test_compare_unknown_design_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(SMALL + ["compare", "--design", "gpu"])

    def test_compare_rejects_non_llm_model(self):
        with pytest.raises(SystemExit):
            main(SMALL + ["--llm", "dit-xl-2", "compare"])


class TestExplore:
    def test_explore_runs_and_prints_table(self, capsys):
        code, out = run_cli(capsys, *SMALL, "explore")
        assert code == 0
        assert "design-space exploration" in out
        assert "baseline" in out

    def test_explore_honours_global_llm_flag(self, capsys):
        """Regression: ``--llm`` used to be silently ignored by ``explore``."""
        _, default_out = run_cli(capsys, *SMALL, "--llm", "gpt3-30b", "explore")
        _, llama_out = run_cli(capsys, *SMALL, "--llm", "llama2-7b", "explore")
        assert default_out != llama_out  # a different model gives different latencies

    def test_explore_rejects_non_llm_model(self):
        with pytest.raises(SystemExit, match="not an LLM"):
            main(SMALL + ["--llm", "dit-xl-2", "explore"])

    def test_explore_with_workers(self, capsys):
        code, out = run_cli(capsys, *SMALL, "explore", "--workers", "2")
        assert code == 0
        assert "design-space exploration" in out


class TestSweep:
    def test_sweep_runs_and_reports_cache_stats(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "gpt3-30b", "dit-xl-2",
                            "--designs", "baseline", "design-a",
                            "--precisions", "int8", "--batches", "2")
        assert code == 0
        assert "Scenario sweep" in out
        assert "graph simulations" in out
        assert "dit-xl-2" in out

    def test_sweep_exports_json_and_csv(self, capsys, tmp_path):
        json_path = tmp_path / "rows.json"
        csv_path = tmp_path / "rows.csv"
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "gpt3-30b",
                            "--designs", "baseline", "--precisions", "int8",
                            "--batches", "2", "--json", str(json_path),
                            "--csv", str(csv_path))
        assert code == 0
        assert json_path.exists() and csv_path.exists()
        assert "latency_seconds" in json_path.read_text()
        assert csv_path.read_text().startswith("design,")

    def test_sweep_multi_device_axis(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "llama2-7b",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2", "--devices", "1", "2")
        assert code == 0
        assert out.count("llama2-7b") >= 2

    def test_sweep_tensor_parallelism_skips_dit_models(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "llama2-7b", "dit-xl-2",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2", "--devices", "2", "--parallelism", "tensor")
        assert code == 0
        assert "skipping DiT models" in out
        assert "llama2-7b" in out

    def test_sweep_tensor_parallelism_with_only_dit_fails(self):
        with pytest.raises(SystemExit, match="only modelled for LLM"):
            main(SMALL + ["sweep", "--models", "dit-xl-2", "--designs", "design-a",
                          "--precisions", "int8", "--batches", "2",
                          "--devices", "2", "--parallelism", "tensor"])

    def test_sweep_unwritable_export_path_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot write results"):
            main(SMALL + ["sweep", "--models", "gpt3-30b", "--designs", "baseline",
                          "--precisions", "int8", "--batches", "2",
                          "--json", str(tmp_path / "missing-dir" / "rows.json")])

    def test_sweep_unknown_design_fails(self):
        with pytest.raises(SystemExit, match="unknown design"):
            main(SMALL + ["sweep", "--designs", "gpu"])

    def test_sweep_unknown_model_fails(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(SMALL + ["sweep", "--models", "gpt5"])

    def test_sweep_parser_defaults_cover_registry(self):
        args = build_parser().parse_args(["sweep"])
        assert "gpt3-175b" in args.models and "mixtral-8x7b" in args.models
        assert "dit-xl-2" in args.models
        assert set(args.precisions) == {"int8", "bf16"}
        assert args.batches == [1, 8]
        assert args.scenarios is None  # default: per-model scenarios

    def test_sweep_explicit_scenarios(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "llama2-7b", "dit-xl-2",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2",
                            "--scenarios", "chat-serving", "dit-sampling")
        assert code == 0
        assert "chat-serving" in out
        assert "dit-sampling" in out

    def test_sweep_moe_model_uses_moe_scenario(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "mixtral-8x7b",
                            "--designs", "design-a", "--precisions", "int8",
                            "--batches", "2")
        assert code == 0
        assert "moe-serving" in out

    def test_sweep_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(SMALL + ["sweep", "--scenarios", "training"])

    def test_sweep_tensor_parallelism_skips_moe_models(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "mixtral-8x7b",
                            "llama2-7b", "--designs", "design-a",
                            "--precisions", "int8", "--batches", "2",
                            "--devices", "2", "--parallelism", "tensor")
        assert code == 0
        assert "without a tensor-parallel scenario" in out
        assert "llama2-7b" in out

    def test_sweep_tensor_parallelism_skips_unshardable_scenarios(self, capsys):
        # chat-serving declares tensor support, but an MoE model cannot be
        # sharded, so the shard probe drops it instead of aborting mid-sweep.
        code, out = run_cli(capsys, *SMALL, "sweep", "--models", "mixtral-8x7b",
                            "llama2-7b", "--designs", "design-a",
                            "--precisions", "int8", "--batches", "2",
                            "--scenarios", "chat-serving",
                            "--devices", "2", "--parallelism", "tensor")
        assert code == 0
        assert "without a tensor-parallel scenario" in out
        assert "mixtral-8x7b" in out
        assert "chat-serving" in out


class TestServe:
    SERVE = ["--seed", "7", "--llm", "llama2-7b", "--input-tokens", "64",
             "--output-tokens", "16", "serve", "--scenario", "llm-serving",
             "--rate", "20", "--requests", "30"]

    def test_serve_runs_and_prints_slo_analytics(self, capsys):
        code, out = run_cli(capsys, *self.SERVE)
        assert code == 0
        assert "TTFT" in out and "TPOT" in out and "p99" in out
        assert "SLO" in out and "goodput" in out
        assert "step-cost cache" in out and "hit rate" in out

    def test_serve_is_bit_for_bit_reproducible(self, capsys):
        _, first = run_cli(capsys, *self.SERVE)
        _, second = run_cli(capsys, *self.SERVE)
        assert first == second

    def test_serve_seed_changes_the_run(self, capsys):
        _, first = run_cli(capsys, *self.SERVE)
        _, other = run_cli(capsys, "--seed", "8", *self.SERVE[2:])
        assert first != other

    def test_serve_default_scenario_is_chat_serving(self):
        args = build_parser().parse_args(["serve"])
        assert args.scenario == "chat-serving"
        assert args.scheduler == "fcfs"

    def test_serve_exports_report_and_request_rows(self, capsys, tmp_path):
        import json as json_module

        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "requests.csv"
        code, _ = run_cli(capsys, *self.SERVE, "--json", str(json_path),
                          "--csv", str(csv_path))
        assert code == 0
        report = json_module.loads(json_path.read_text())
        assert report["completed"] == 30
        assert "cost_cache_hit_rate" in report and "ttft" in report
        assert csv_path.read_text().startswith("request_id,")

    def test_serve_replays_jsonl_trace(self, capsys, tmp_path):
        from repro.serving.trace import generate_trace, write_trace_jsonl
        from repro.workloads.chat import RequestClass

        trace_path = tmp_path / "trace.jsonl"
        write_trace_jsonl(generate_trace(
            "poisson", (RequestClass(input_tokens=64, output_tokens=16),),
            10.0, 20, 3), trace_path)
        code, out = run_cli(capsys, "--llm", "llama2-7b", "serve",
                            "--scenario", "llm-serving",
                            "--trace-file", str(trace_path))
        assert code == 0
        assert "20/20 completed" in out

    def test_serve_scheduler_flag_changes_output(self, capsys):
        _, fcfs = run_cli(capsys, *self.SERVE, "--rate", "100")
        _, waves = run_cli(capsys, *self.SERVE, "--rate", "100",
                           "--scheduler", "decode-priority")
        assert fcfs != waves

    def test_serve_rejects_non_llm_model(self):
        with pytest.raises(SystemExit, match="not an LLM"):
            main(["--llm", "dit-xl-2", "serve"])

    def test_serve_rejects_unsupported_scenario(self):
        with pytest.raises(SystemExit, match="does not support"):
            main(["--llm", "llama2-7b", "serve", "--scenario", "moe-serving"])

    def test_serve_rejects_undersized_deployment(self):
        with pytest.raises(SystemExit, match="does not fit"):
            main(["--llm", "gpt3-30b", "serve", "--devices", "1"])

    def test_serve_unwritable_export_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot write results"):
            main(self.SERVE + ["--json", str(tmp_path / "missing" / "report.json")])


class TestServeFidelityAndShards:
    BASE = ["--seed", "7", "--llm", "llama2-7b", "--input-tokens", "64",
            "--output-tokens", "16", "serve", "--scenario", "chat-serving",
            "--rate", "0.5", "--requests", "60"]

    def test_sharded_output_matches_serial(self, capsys):
        _, serial = run_cli(capsys, *self.BASE)
        _, sharded = run_cli(capsys, *self.BASE, "--shards", "5")
        assert sharded == serial

    def test_fluid_fidelity_prints_report(self, capsys):
        code, out = run_cli(capsys, *self.BASE, "--fidelity", "fluid")
        assert code == 0
        assert "TTFT" in out and "SLO" in out

    def test_fluid_rejects_trace_file(self, tmp_path):
        with pytest.raises(SystemExit, match="fluid"):
            main(self.BASE + ["--fidelity", "fluid",
                              "--trace-file", str(tmp_path / "t.jsonl")])

    def test_fluid_rejects_faults(self):
        with pytest.raises(SystemExit, match="exact"):
            main(self.BASE + ["--fidelity", "fluid",
                              "--faults", "replica-crash:at_s=1"])

    def test_fluid_rejects_shards(self):
        with pytest.raises(SystemExit, match="shard"):
            main(self.BASE + ["--fidelity", "fluid", "--shards", "2"])

    def test_shards_reject_fleet_runs(self):
        with pytest.raises(SystemExit, match="single-deployment"):
            main(self.BASE + ["--replicas", "2", "--shards", "2"])

    def test_profile_writes_pstats_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "serve.pstats"
        code, out = run_cli(capsys, *self.BASE, "--profile",
                            "--profile-out", str(out_path))
        assert code == 0
        assert "cumulative" in out
        assert out_path.stat().st_size > 0

    def test_fleet_fluid_fidelity_sizes_the_fleet(self, capsys):
        code, out = run_cli(
            capsys, "--llm", "llama2-7b", "--input-tokens", "64",
            "--output-tokens", "16", "fleet", "--rate", "2",
            "--requests", "80", "--max-replicas", "2", "--seed", "7",
            "--fidelity", "fluid")
        assert "Fleet sizing" in out and "replicas" in out


class TestServeCluster:
    CLUSTER = ["--llm", "llama2-7b", "--input-tokens", "64",
               "--output-tokens", "16", "serve", "--replicas", "3",
               "--rate", "32", "--requests", "60", "--seed", "7"]

    def test_cluster_run_prints_fleet_analytics(self, capsys):
        code, out = run_cli(capsys, *self.CLUSTER)
        assert code == 0
        assert "x3 replicas" in out and "round-robin router" in out
        assert "Per-replica breakdown" in out
        assert "per million tokens" in out
        assert "peak" in out and "active" in out

    def test_cluster_run_is_bit_for_bit_reproducible(self, capsys):
        _, first = run_cli(capsys, *self.CLUSTER)
        _, second = run_cli(capsys, *self.CLUSTER)
        assert first == second

    def test_router_flag_changes_the_split(self, capsys):
        _, round_robin = run_cli(capsys, *self.CLUSTER)
        _, affinity = run_cli(capsys, *self.CLUSTER, "--router",
                              "session-affinity")
        assert round_robin != affinity

    def test_autoscaler_flag_reports_scaling(self, capsys):
        code, out = run_cli(capsys, *self.CLUSTER, "--autoscaler",
                            "queue-depth", "--rate", "200")
        assert code == 0
        assert "queue-depth autoscaler" in out

    def test_check_determinism_passes_and_prints_digest(self, capsys):
        code, out = run_cli(capsys, *self.CLUSTER, "--check-determinism")
        assert code == 0
        assert "determinism check passed" in out
        assert "stable p99 digest" in out

    def test_check_determinism_single_deployment(self, capsys):
        code, out = run_cli(capsys, "--llm", "llama2-7b", "--input-tokens",
                            "64", "--output-tokens", "16", "serve",
                            "--rate", "16", "--requests", "30", "--seed", "7",
                            "--check-determinism")
        assert code == 0
        assert "determinism check passed" in out

    def test_subcommand_seed_overrides_global(self, capsys):
        _, sub_seed = run_cli(capsys, *self.CLUSTER)  # --seed 7 after serve
        _, global_seed = run_cli(capsys, "--seed", "7", *self.CLUSTER[:-2])
        assert sub_seed == global_seed

    def test_cluster_exports_report_and_replica_rows(self, capsys, tmp_path):
        import json as json_module

        json_path = tmp_path / "cluster.json"
        csv_path = tmp_path / "replicas.csv"
        code, _ = run_cli(capsys, *self.CLUSTER, "--json", str(json_path),
                          "--csv", str(csv_path))
        assert code == 0
        report = json_module.loads(json_path.read_text())
        assert report["fleet_size"] == 3
        assert "replica_timeline" in report and "cost_per_million_tokens_dollars" in report
        text = csv_path.read_text()
        assert text.startswith("index,")
        assert text.count("\n") == 4  # header + one row per replica

    def test_min_replicas_validation_fails_cleanly(self):
        with pytest.raises(SystemExit, match="min_replicas"):
            main(self.CLUSTER + ["--min-replicas", "5"])


class TestFleet:
    FLEET = ["--llm", "llama2-7b", "--input-tokens", "64",
             "--output-tokens", "16", "fleet", "--rate", "8",
             "--requests", "40", "--max-replicas", "4",
             "--slo-ttft", "2.0", "--slo-tpot", "0.2",
             "--attainment", "0.8", "--seed", "7"]

    def test_fleet_sizing_prints_verdict(self, capsys):
        code, out = run_cli(capsys, *self.FLEET)
        assert code == 0
        assert "Fleet sizing" in out
        assert "SLO attained" in out and "$/Mtok" in out
        assert "verdict:" in out and "meet the SLO target" in out

    def test_fleet_exports_plan(self, capsys, tmp_path):
        import json as json_module

        path = tmp_path / "plan.json"
        code, _ = run_cli(capsys, *self.FLEET, "--json", str(path))
        assert code == 0
        plan = json_module.loads(path.read_text())
        assert plan["met"] is True
        assert plan["evaluations"]

    def test_unmet_target_exits_nonzero(self, capsys):
        code = main(self.FLEET[:-2] + ["--slo-ttft", "0.000001",
                                       "--slo-tpot", "0.000001",
                                       "--max-replicas", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no fleet" in out

    def test_fleet_rejects_non_llm_model(self):
        with pytest.raises(SystemExit, match="not an LLM"):
            main(["--llm", "dit-xl-2", "fleet", "--rate", "8"])

    def test_fleet_requires_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])


class TestOptimize:
    OPTIMIZE = ["--llm", "llama2-7b", "--input-tokens", "64",
                "--output-tokens", "16", "optimize",
                "--designs", "baseline", "design-a",
                "--replica-counts", "2", "3",
                "--rate", "24", "--requests", "120", "--seed", "7",
                "--constraints", "slo>=0.5"]

    def test_optimize_prints_frontier_and_provenance(self, capsys):
        code, out = run_cli(capsys, *self.OPTIMIZE)
        assert code == 0
        assert "Pareto frontier" in out
        assert "best cost-per-million-tokens" in out
        assert "best p99-ttft" in out
        assert "searched 4 candidates" in out
        assert "new simulations:" in out

    def test_optimize_warm_store_simulates_nothing(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        code, cold = run_cli(capsys, *self.OPTIMIZE, "--store", str(store))
        assert code == 0
        assert "new simulations: 0;" not in cold
        code, warm = run_cli(capsys, *self.OPTIMIZE, "--store", str(store))
        assert code == 0
        assert "new simulations: 0;" in warm

        def frontier_lines(text):
            return [line for line in text.splitlines()
                    if "simulations" not in line and "store" not in line]

        assert frontier_lines(warm) == frontier_lines(cold)

    def test_optimize_exports_json_and_csv(self, capsys, tmp_path):
        import json as json_module

        json_path = tmp_path / "frontier.json"
        csv_path = tmp_path / "frontier.csv"
        code, _ = run_cli(capsys, *self.OPTIMIZE, "--json", str(json_path),
                          "--csv", str(csv_path))
        assert code == 0
        payload = json_module.loads(json_path.read_text())
        assert payload["strategy"] == "successive-halving"
        assert payload["points"]
        header = csv_path.read_text().splitlines()[0]
        assert "cost_per_million_tokens_dollars" in header
        assert "dominated_count" in header

    def test_optimize_exhaustive_strategy(self, capsys):
        code, out = run_cli(capsys, *self.OPTIMIZE, "--strategy", "exhaustive")
        assert code == 0
        assert "exhaustive search" in out

    def test_optimize_unsatisfiable_constraints_exit_nonzero(self, capsys):
        code = main(self.OPTIMIZE[:-1] + ["chip-hours<=0.0000001"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no feasible candidate" in out

    def test_optimize_rejects_bad_constraint(self):
        with pytest.raises(SystemExit, match="accepted forms"):
            main(self.OPTIMIZE[:-1] + ["cheap-and-fast"])

    def test_optimize_rejects_unknown_design(self):
        with pytest.raises(SystemExit, match="predefined designs"):
            main(["--llm", "llama2-7b", "optimize", "--designs", "gpu",
                  "--rate", "8"])

    def test_optimize_unusable_store_path_exits_cleanly(self):
        with pytest.raises(SystemExit, match="cannot use result store"):
            main(self.OPTIMIZE + ["--store", "/proc/nope/store.jsonl"])

    def test_optimize_rejects_non_llm_model(self):
        with pytest.raises(SystemExit, match="not an LLM"):
            main(["--llm", "dit-xl-2", "optimize"])


class TestServingSweep:
    def test_sweep_serving_axes(self, capsys):
        code, out = run_cli(capsys, "--seed", "3", *SMALL, "sweep",
                            "--models", "llama2-7b", "--designs", "baseline",
                            "--precisions", "int8", "--batches", "2",
                            "--scenarios", "llm-serving",
                            "--schedulers", "fcfs", "decode-priority",
                            "--arrival-rates", "4", "--trace-requests", "20")
        assert code == 0
        assert "fcfs" in out and "decode-priority" in out
        assert "seed=3" in out

    def test_sweep_serving_skips_non_llm_models(self, capsys):
        code, out = run_cli(capsys, *SMALL, "sweep",
                            "--models", "llama2-7b", "dit-xl-2",
                            "--designs", "baseline", "--precisions", "int8",
                            "--batches", "2", "--schedulers", "fcfs",
                            "--arrival-rates", "4", "--trace-requests", "10")
        assert code == 0
        assert "skipping non-LLM models" in out

    def test_sweep_serving_with_only_dit_fails(self):
        with pytest.raises(SystemExit, match="only modelled for LLM"):
            main(SMALL + ["sweep", "--models", "dit-xl-2", "--designs", "baseline",
                          "--precisions", "int8", "--batches", "2",
                          "--schedulers", "fcfs", "--arrival-rates", "4"])

    def test_sweep_schedulers_require_rates(self):
        with pytest.raises(SystemExit, match="schedulers and arrival_rates"):
            main(SMALL + ["sweep", "--models", "llama2-7b", "--designs", "baseline",
                          "--precisions", "int8", "--batches", "2",
                          "--schedulers", "fcfs"])

    def test_sweep_fleet_axes(self, capsys):
        code, out = run_cli(capsys, "--seed", "3", *SMALL, "sweep",
                            "--models", "llama2-7b", "--designs", "baseline",
                            "--precisions", "int8", "--batches", "2",
                            "--scenarios", "llm-serving",
                            "--schedulers", "fcfs", "--arrival-rates", "8",
                            "--trace-requests", "20",
                            "--routers", "least-kv-pressure",
                            "--replica-counts", "1", "2")
        assert code == 0
        assert "x2 least-kv-pressure/fixed" in out

    def test_sweep_fleet_axes_require_serving_grid(self):
        with pytest.raises(SystemExit, match="fleet axes"):
            main(SMALL + ["sweep", "--models", "llama2-7b", "--designs",
                          "baseline", "--precisions", "int8", "--batches", "2",
                          "--routers", "round-robin"])


class TestMultiDevice:
    def test_pipeline_parallel(self, capsys):
        code, out = run_cli(capsys, *SMALL, "--llm", "llama2-7b",
                            "multi-device", "--design", "design-a", "--devices", "1", "2")
        assert code == 0
        assert "tokens/s" in out
        assert "pipeline parallel" in out

    def test_tensor_parallel(self, capsys):
        code, out = run_cli(capsys, *SMALL, "--llm", "llama2-7b",
                            "multi-device", "--design", "design-a", "--devices", "2",
                            "--parallelism", "tensor")
        assert code == 0
        assert "tensor parallel" in out


class TestModels:
    def test_models_listing(self, capsys):
        code, out = run_cli(capsys, *SMALL, "models")
        assert code == 0
        assert "gpt3-30b" in out
        assert "dit-xl-2" in out
        assert "min TPUs" in out

    def test_models_listing_includes_moe(self, capsys):
        code, out = run_cli(capsys, *SMALL, "models")
        assert code == 0
        assert "mixtral-8x7b" in out
        assert "MoE" in out
        assert "default scenario" in out


class TestScenarios:
    def test_scenarios_listing(self, capsys):
        code, out = run_cli(capsys, "scenarios")
        assert code == 0
        for name in ("llm-serving", "dit-sampling", "moe-serving", "chat-serving"):
            assert name in out
        assert "tensor-parallel" in out
