"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    exit_code = main(list(argv))
    captured = capsys.readouterr()
    return exit_code, captured.out


SMALL = ["--batch", "2", "--input-tokens", "64", "--output-tokens", "16",
         "--resolution", "256", "--steps", "2"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults_match_paper_settings(self):
        args = build_parser().parse_args(["explore"])
        assert args.batch == 8
        assert args.input_tokens == 1024
        assert args.output_tokens == 512
        assert args.resolution == 512

    def test_multi_device_options(self):
        args = build_parser().parse_args(["multi-device", "--devices", "1", "2",
                                          "--parallelism", "tensor"])
        assert args.devices == [1, 2]
        assert args.parallelism == "tensor"


class TestCompare:
    def test_compare_runs_and_prints_table(self, capsys):
        code, out = run_cli(capsys, *SMALL, "compare", "--design", "cim-default")
        assert code == 0
        assert "Baseline TPUv4i vs. cim-default" in out
        assert "decode layer" in out

    def test_compare_unknown_design_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(SMALL + ["compare", "--design", "gpu"])

    def test_compare_rejects_non_llm_model(self):
        with pytest.raises(SystemExit):
            main(SMALL + ["--llm", "dit-xl-2", "compare"])


class TestMultiDevice:
    def test_pipeline_parallel(self, capsys):
        code, out = run_cli(capsys, *SMALL, "--llm", "llama2-7b",
                            "multi-device", "--design", "design-a", "--devices", "1", "2")
        assert code == 0
        assert "tokens/s" in out
        assert "pipeline parallel" in out

    def test_tensor_parallel(self, capsys):
        code, out = run_cli(capsys, *SMALL, "--llm", "llama2-7b",
                            "multi-device", "--design", "design-a", "--devices", "2",
                            "--parallelism", "tensor")
        assert code == 0
        assert "tensor parallel" in out


class TestModels:
    def test_models_listing(self, capsys):
        code, out = run_cli(capsys, *SMALL, "models")
        assert code == 0
        assert "gpt3-30b" in out
        assert "dit-xl-2" in out
        assert "min TPUs" in out
