"""Tests for the CIM precision pipeline and the Table II energy report."""

import pytest

from repro.cim.energy import CIMEnergyReport, compare_mxus, macro_energy_report
from repro.cim.mxu import CIMMXU, CIMMXUConfig
from repro.cim.precision import PrecisionPipeline
from repro.common import Precision
from repro.systolic.systolic_array import DigitalMXU


class TestPrecisionPipeline:
    def setup_method(self):
        self.pipeline = PrecisionPipeline()

    def test_int8_bypasses_pipeline(self):
        assert self.pipeline.is_bypassed(Precision.INT8)
        assert self.pipeline.pipeline_fill_cycles(Precision.INT8) == 0
        assert self.pipeline.energy_factor(Precision.INT8) == 1.0

    def test_bf16_uses_pipeline(self):
        assert not self.pipeline.is_bypassed(Precision.BF16)
        assert self.pipeline.pipeline_fill_cycles(Precision.BF16) == 5
        assert self.pipeline.energy_factor(Precision.BF16) > 1.0

    def test_throughput_factor_matches_paper(self):
        # The paper's CIM-MXU keeps the same MACs/cycle in BF16 mode.
        assert self.pipeline.throughput_factor(Precision.BF16) == 1.0

    def test_mantissa_bits(self):
        assert self.pipeline.mantissa_bits_loaded(Precision.BF16) == 8

    def test_rejects_negative_depths(self):
        with pytest.raises(ValueError):
            PrecisionPipeline(pre_stage_cycles=-1)


class TestEnergyReport:
    def test_digital_report_matches_table2(self):
        report = macro_energy_report(DigitalMXU())
        assert report.tops_per_watt == pytest.approx(0.77, rel=0.01)
        assert report.tops_per_mm2 == pytest.approx(0.648, rel=0.01)

    def test_cim_report_matches_table2(self):
        report = macro_energy_report(CIMMXU())
        assert report.tops_per_watt == pytest.approx(7.26, rel=0.01)
        assert report.tops_per_mm2 == pytest.approx(1.31, rel=0.01)

    def test_report_total_power(self):
        report = macro_energy_report(CIMMXU())
        assert report.total_power_w == pytest.approx(
            report.dynamic_power_w + report.leakage_power_w)

    def test_report_is_dataclass_with_positive_fields(self):
        report = macro_energy_report(DigitalMXU())
        assert isinstance(report, CIMEnergyReport)
        assert report.peak_tops > 0 and report.area_mm2 > 0


class TestCompareMxus:
    def test_table2_rows(self):
        comparison = compare_mxus(DigitalMXU(), CIMMXU())
        assert comparison["digital_macs_per_cycle"] == 16384
        assert comparison["cim_macs_per_cycle"] == 16384
        assert comparison["energy_efficiency_gain"] == pytest.approx(9.43, rel=0.01)
        assert comparison["area_efficiency_gain"] == pytest.approx(2.02, rel=0.01)

    def test_area_ratio_near_half(self):
        comparison = compare_mxus(DigitalMXU(), CIMMXU())
        assert comparison["cim_area_ratio"] == pytest.approx(0.5, abs=0.1)

    def test_smaller_cim_mxu_keeps_efficiency(self):
        # Efficiency (TOPS/W) is a per-core property and must not depend on
        # the grid dimensions.
        small = CIMMXU(config=CIMMXUConfig(grid_rows=8, grid_cols=8))
        comparison = compare_mxus(DigitalMXU(), small)
        assert comparison["energy_efficiency_gain"] == pytest.approx(9.43, rel=0.01)
