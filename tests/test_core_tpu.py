"""Tests for the chip-level TPU model."""

import pytest

from repro.cim.mxu import CIMMXU
from repro.core.config import MXUType
from repro.core.units import UnsupportedOperatorError
from repro.systolic.systolic_array import DigitalMXU
from repro.workloads.graph import OperatorGraph
from repro.workloads.operators import (
    ElementwiseOp,
    GeLUOp,
    LayerCategory,
    LayerNormOp,
    MatMulOp,
    SoftmaxOp,
)


class TestConstruction:
    def test_baseline_builds_digital_mxu(self, baseline_model):
        assert isinstance(baseline_model.mxu, DigitalMXU)
        assert baseline_model.config.mxu_type is MXUType.SYSTOLIC

    def test_cim_builds_cim_mxu(self, cim_model):
        assert isinstance(cim_model.mxu, CIMMXU)

    def test_mxu_area_cim_smaller(self, baseline_model, cim_model):
        assert cim_model.mxu_area_mm2 < baseline_model.mxu_area_mm2

    def test_cycles_to_seconds(self, baseline_model):
        assert baseline_model.cycles_to_seconds(1.05e9) == pytest.approx(1.0)


class TestRunOperator:
    def test_matmul_runs_on_mxu(self, baseline_model):
        op = MatMulOp(name="mm", category=LayerCategory.QKV_GEN, m=256, k=512, n=512)
        result = baseline_model.run_operator(op)
        assert result.unit == "mxu"
        assert result.cycles > 0
        assert result.seconds == pytest.approx(
            baseline_model.cycles_to_seconds(result.cycles))
        assert result.mxu_energy > 0

    def test_softmax_runs_on_vpu(self, baseline_model):
        op = SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=1024, row_length=256)
        result = baseline_model.run_operator(op)
        assert result.unit == "vpu"
        assert result.mxu_busy_cycles == 0.0

    def test_vector_op_still_charges_mxu_idle_leakage(self, baseline_model):
        op = SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=4096, row_length=1024)
        result = baseline_model.run_operator(op)
        assert result.mxu_energy > 0
        assert result.energy.component_total("vpu") > 0

    def test_all_vector_op_types_supported(self, baseline_model):
        ops = [
            LayerNormOp(name="ln", category=LayerCategory.LAYERNORM, rows=64, hidden_dim=512),
            GeLUOp(name="g", category=LayerCategory.GELU, elements=4096),
            ElementwiseOp(name="res", category=LayerCategory.OTHER, elements=4096),
        ]
        for op in ops:
            result = baseline_model.run_operator(op)
            assert result.cycles > 0

    def test_unsupported_operator_type_rejected(self, baseline_model):
        class FakeOp:
            name = "fake"
            precision = None
        with pytest.raises(UnsupportedOperatorError, match="registered operator types"):
            baseline_model.run_operator(FakeOp())

    def test_memory_bound_gemv_flagged(self, cim_model):
        op = MatMulOp(name="gemv", category=LayerCategory.FFN1, m=8, k=7168, n=28672)
        result = cim_model.run_operator(op)
        assert result.bound == "memory"

    def test_compute_bound_gemm_flagged(self, baseline_model):
        op = MatMulOp(name="gemm", category=LayerCategory.FFN1, m=8192, k=7168, n=28672)
        result = baseline_model.run_operator(op)
        assert result.bound == "compute"


class TestRunGraph:
    def make_graph(self):
        graph = OperatorGraph(name="mini")
        graph.add(LayerNormOp(name="ln", category=LayerCategory.LAYERNORM, rows=64, hidden_dim=512))
        graph.add(MatMulOp(name="mm", category=LayerCategory.QKV_GEN, m=64, k=512, n=1536))
        graph.add(SoftmaxOp(name="sm", category=LayerCategory.ATTENTION, rows=512, row_length=64))
        return graph

    def test_graph_totals_are_sums(self, baseline_model):
        graph = self.make_graph()
        result = baseline_model.run_graph(graph)
        assert len(result.operator_results) == 3
        assert result.total_seconds == pytest.approx(
            sum(r.seconds for r in result.operator_results))

    def test_graph_energy_includes_all_components(self, baseline_model):
        result = baseline_model.run_graph(self.make_graph())
        components = result.total_energy.components
        assert "mxu" in components
        assert "vpu" in components

    def test_cim_and_baseline_agree_on_macs(self, baseline_model, cim_model):
        graph = self.make_graph()
        base = baseline_model.run_graph(graph)
        cim = cim_model.run_graph(graph)
        assert base.total_macs == cim.total_macs
