"""Tests for the serving trace generators and the JSONL loader."""

import random

import pytest

from repro.serving.trace import (
    TRACE_REGISTRY,
    Request,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    load_trace_jsonl,
    poisson_trace,
    register_trace,
    request_classes_from_settings,
    write_trace_jsonl,
)
from repro.workloads.chat import DEFAULT_REQUEST_MIX, ChatServingSettings, RequestClass
from repro.workloads.scenario import DiTInferenceSettings, LLMInferenceSettings

MIX = (RequestClass(input_tokens=64, output_tokens=32, weight=0.7),
       RequestClass(input_tokens=512, output_tokens=128, weight=0.3))


class TestRequest:
    def test_total_tokens(self):
        request = Request(request_id=0, arrival_s=1.0, input_tokens=64, output_tokens=16)
        assert request.total_tokens == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_s=-1.0, input_tokens=64, output_tokens=16)
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_s=0.0, input_tokens=0, output_tokens=16)


class TestGenerators:
    @pytest.mark.parametrize("kind", sorted(TRACE_REGISTRY))
    def test_seeded_generation_is_deterministic(self, kind):
        first = generate_trace(kind, MIX, rate=4.0, num_requests=50, seed=7)
        second = generate_trace(kind, MIX, rate=4.0, num_requests=50, seed=7)
        assert first == second

    @pytest.mark.parametrize("kind", sorted(TRACE_REGISTRY))
    def test_different_seeds_differ(self, kind):
        assert (generate_trace(kind, MIX, 4.0, 50, seed=1)
                != generate_trace(kind, MIX, 4.0, 50, seed=2))

    @pytest.mark.parametrize("kind", sorted(TRACE_REGISTRY))
    def test_arrivals_sorted_ids_sequential(self, kind):
        trace = generate_trace(kind, MIX, 4.0, 80, seed=3)
        assert len(trace) == 80
        arrivals = [request.arrival_s for request in trace]
        assert arrivals == sorted(arrivals)
        assert [request.request_id for request in trace] == list(range(80))

    def test_shapes_come_from_the_mix(self):
        trace = generate_trace("poisson", MIX, 4.0, 200, seed=5)
        shapes = {(r.input_tokens, r.output_tokens) for r in trace}
        assert shapes <= {(64, 32), (512, 128)}
        assert len(shapes) == 2  # both classes appear in 200 draws

    def test_mix_weights_bias_the_draw(self):
        trace = generate_trace("poisson", MIX, 4.0, 500, seed=5)
        short = sum(1 for r in trace if r.input_tokens == 64)
        assert short > 250  # the 70 % class dominates

    def test_poisson_mean_rate(self):
        trace = poisson_trace(MIX, rate=10.0, num_requests=2000,
                              rng=random.Random(11))
        span = trace[-1].arrival_s
        assert 2000 / span == pytest.approx(10.0, rel=0.15)

    def test_bursty_shares_arrival_instants(self):
        trace = bursty_trace(MIX, rate=10.0, num_requests=300,
                             rng=random.Random(1), mean_burst_size=8)
        distinct_instants = len({r.arrival_s for r in trace})
        assert distinct_instants < 150  # far fewer bursts than requests

    def test_diurnal_rate_is_modulated(self):
        trace = diurnal_trace(MIX, rate=50.0, num_requests=3000,
                              rng=random.Random(2), period_s=60.0, amplitude=0.9)
        # Count arrivals in the peak vs. trough half-periods of the first cycle.
        peak = sum(1 for r in trace if 0.0 <= r.arrival_s < 30.0)
        trough = sum(1 for r in trace if 30.0 <= r.arrival_s < 60.0)
        assert peak > 1.5 * trough

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace("poisson", MIX, rate=0.0, num_requests=10, seed=0)
        with pytest.raises(ValueError):
            generate_trace("poisson", MIX, rate=1.0, num_requests=0, seed=0)
        with pytest.raises(ValueError):
            generate_trace("poisson", (), rate=1.0, num_requests=10, seed=0)
        with pytest.raises(ValueError):
            diurnal_trace(MIX, 1.0, 10, random.Random(0), amplitude=1.5)

    def test_unknown_kind_lists_registered(self):
        with pytest.raises(KeyError, match="poisson"):
            generate_trace("adversarial", MIX, 1.0, 10, seed=0)

    def test_register_trace_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_trace("poisson", poisson_trace)


class TestRequestClassesFromSettings:
    def test_chat_settings_carry_their_mix(self):
        settings = ChatServingSettings(batch=2, request_classes=MIX)
        assert request_classes_from_settings(settings) == MIX

    def test_llm_settings_become_one_class(self):
        settings = LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16)
        (cls,) = request_classes_from_settings(settings)
        assert (cls.input_tokens, cls.output_tokens) == (64, 16)

    def test_default_chat_mix_round_trips(self):
        settings = ChatServingSettings()
        assert request_classes_from_settings(settings) == DEFAULT_REQUEST_MIX

    def test_dit_settings_rejected(self):
        with pytest.raises(ValueError, match="request mix"):
            request_classes_from_settings(DiTInferenceSettings())


class TestJsonl:
    def test_round_trip(self, tmp_path):
        trace = generate_trace("poisson", MIX, 4.0, 30, seed=9)
        path = write_trace_jsonl(trace, tmp_path / "trace.jsonl")
        assert load_trace_jsonl(path) == trace

    def test_loader_sorts_by_arrival(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"arrival_s": 5.0, "input_tokens": 8, "output_tokens": 4}\n'
            '{"arrival_s": 1.0, "input_tokens": 16, "output_tokens": 2}\n')
        trace = load_trace_jsonl(path)
        assert [r.arrival_s for r in trace] == [1.0, 5.0]

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"arrival_s": 1.0, "input_tokens": 8}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_trace_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no requests"):
            load_trace_jsonl(path)


class TestSessionIds:
    def test_session_round_trips_through_jsonl(self, tmp_path):
        trace = (Request(request_id=0, arrival_s=0.0, input_tokens=8,
                         output_tokens=4, session_id=11),
                 Request(request_id=1, arrival_s=0.5, input_tokens=8,
                         output_tokens=4))
        path = write_trace_jsonl(trace, tmp_path / "sessions.jsonl")
        loaded = load_trace_jsonl(path)
        assert loaded[0].session_id == 11
        assert loaded[1].session_id is None
        assert loaded == trace

    def test_sessionless_lines_write_explicit_null(self, tmp_path):
        # Dump/load symmetry: a standalone request's session_id is written
        # explicitly as null, not dropped, so every field round-trips.
        trace = (Request(request_id=0, arrival_s=0.0, input_tokens=8,
                         output_tokens=4),)
        path = write_trace_jsonl(trace, tmp_path / "plain.jsonl")
        assert '"session_id": null' in path.read_text()

    def test_negative_session_rejected(self):
        with pytest.raises(ValueError, match="session_id"):
            Request(request_id=0, arrival_s=0.0, input_tokens=8,
                    output_tokens=4, session_id=-1)

    def test_mixed_session_trace_round_trips_bit_for_bit(self, tmp_path):
        # Regression: a trace mixing session-carrying and standalone
        # requests must reload as the identical tuple — None session ids
        # included — or a replayed trace diverges from the in-memory run.
        trace = (
            Request(request_id=0, arrival_s=0.0, input_tokens=8,
                    output_tokens=4, session_id=3),
            Request(request_id=1, arrival_s=0.5, input_tokens=8,
                    output_tokens=4),
            Request(request_id=2, arrival_s=1.0, input_tokens=16,
                    output_tokens=8, session_id=0),
            Request(request_id=3, arrival_s=1.5, input_tokens=16,
                    output_tokens=8, session_id=None),
        )
        loaded = load_trace_jsonl(write_trace_jsonl(trace, tmp_path / "mix.jsonl"))
        assert loaded == trace

    def test_reloaded_trace_routes_identically_under_session_affinity(
            self, tmp_path):
        # The observable contract behind the symmetry fix: routing a
        # reloaded trace through the session-affinity policy must pick the
        # same replica for every request as the in-memory trace does.
        from repro.serving.router import ReplicaView, RouterContext, get_router

        rng = random.Random(11)
        trace = tuple(
            Request(request_id=i, arrival_s=0.25 * i, input_tokens=8,
                    output_tokens=4,
                    session_id=rng.choice((None, 0, 1, 2, 7)))
            for i in range(40))
        loaded = load_trace_jsonl(write_trace_jsonl(trace, tmp_path / "affinity.jsonl"))

        router = get_router("session-affinity")
        views = tuple(
            ReplicaView(index=index, tpu_name="tpu", devices=1, max_batch=32,
                        outstanding_requests=0, outstanding_tokens=0,
                        service_tokens_per_s=100.0, kv_budget_bytes=10**9,
                        kv_bytes_per_token=1000)
            for index in range(3))

        def routes(requests):
            return [router.choose(request, views,
                                  RouterContext(now_s=request.arrival_s,
                                                routed_count=i, fleet_size=3)).index
                    for i, request in enumerate(requests)]

        assert routes(loaded) == routes(trace)
