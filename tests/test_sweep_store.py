"""Tests for the persistent result store and its engine integration."""

import json

import pytest

from repro.core.designs import PREDEFINED_DESIGNS, design_a, tpuv4i_baseline
from repro.serving.cluster import cluster_report_from_dict, simulate_cluster
from repro.serving.spec import ServingSpec
from repro.sweep.engine import SweepEngine
from repro.sweep.grid import SweepGrid
from repro.sweep.store import STORE_VERSION, ResultStore
from repro.workloads.llm import LLAMA2_7B
from repro.workloads.registry import get_scenario
from repro.workloads.scenario import ScenarioKnobs


def small_grid(**overrides):
    base = dict(designs={"baseline": tpuv4i_baseline(), "design-a": design_a()},
                models=["gpt3-30b"], input_tokens=64, output_tokens=16)
    base.update(overrides)
    return SweepGrid(**base)


class TestResultStore:
    def test_round_trips_payloads_across_instances(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put("kind-a", "key-1", {"value": 1.5, "label": "x"})
        store.put("kind-b", "key-1", {"other": True})
        reopened = ResultStore(path)
        assert len(reopened) == 2
        assert reopened.get("kind-a", "key-1") == {"value": 1.5, "label": "x"}
        assert reopened.get("kind-b", "key-1") == {"other": True}

    def test_get_counts_hits_and_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.get("kind", "absent") is None
        store.put("kind", "present", {"v": 1})
        assert store.get("kind", "present") == {"v": 1}
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_last_record_of_a_key_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put("kind", "key", {"v": 1})
        store.put("kind", "key", {"v": 2})
        assert ResultStore(path).get("kind", "key") == {"v": 2}

    def test_foreign_versions_are_skipped_on_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        record = {"v": STORE_VERSION + 1, "kind": "kind", "key": "key",
                  "value": {"v": 1}}
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        store = ResultStore(path)
        assert len(store) == 0
        assert store.skipped_versions == 1

    def test_corrupt_and_torn_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = json.dumps({"v": STORE_VERSION, "kind": "kind", "key": "key",
                           "value": {"v": 1}})
        path.write_text("not json\n" + good + "\n" + good[: len(good) // 2],
                        encoding="utf-8")
        store = ResultStore(path)
        assert store.get("kind", "key") == {"v": 1}
        assert store.skipped_corrupt == 2

    def test_missing_file_is_an_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert len(store) == 0
        assert store.get("kind", "key") is None

    def test_concurrent_writers_never_tear_or_duplicate_lines(self, tmp_path):
        """N threads hammering one store append exactly N*M whole lines.

        The regression this pins: before the store grew its internal lock,
        concurrent ``put`` calls could interleave partial writes (torn
        lines) and race the in-memory index.  Every appended line must
        parse, every (kind, key) must appear exactly once, and a reload
        must see every record.
        """
        import threading

        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        threads_n, puts_n = 8, 50
        barrier = threading.Barrier(threads_n)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(puts_n):
                store.put("kind", f"w{worker}-k{i}",
                          {"worker": worker, "i": i, "pad": "x" * 200})

        threads = [threading.Thread(target=hammer, args=(worker,))
                   for worker in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == threads_n * puts_n
        seen = set()
        for line in lines:
            record = json.loads(line)  # raises on a torn line
            assert record["v"] == STORE_VERSION
            assert (record["kind"], record["key"]) not in seen
            seen.add((record["kind"], record["key"]))
        reloaded = ResultStore(path)
        assert len(reloaded) == threads_n * puts_n
        assert reloaded.skipped_corrupt == 0
        assert reloaded.get("kind", "w0-k0") == {"worker": 0, "i": 0,
                                                 "pad": "x" * 200}

    def test_concurrent_readers_and_writers_count_consistently(self, tmp_path):
        """Mixed get/put traffic keeps stats and index coherent."""
        import threading

        store = ResultStore(tmp_path / "store.jsonl")
        for i in range(20):
            store.put("kind", f"k{i}", {"i": i})

        def read_all() -> None:
            for i in range(20):
                assert store.get("kind", f"k{i}") == {"i": i}

        def write_more(worker: int) -> None:
            for i in range(20):
                store.put("kind", f"extra-w{worker}-{i}", {"i": i})

        threads = ([threading.Thread(target=read_all) for _ in range(4)]
                   + [threading.Thread(target=write_more, args=(w,))
                      for w in range(4)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats.hits == 4 * 20
        assert len(store) == 20 + 4 * 20


class TestEngineStoreIntegration:
    def test_warm_store_serves_rows_with_zero_simulations(self, tmp_path):
        path = tmp_path / "store.jsonl"
        grid = small_grid()
        cold = SweepEngine(store=ResultStore(path))
        cold_rows = cold.sweep(grid)
        assert cold.stats.simulations > 0
        assert cold.stats.store_hits == 0

        warm = SweepEngine(store=ResultStore(path))
        warm_rows = warm.sweep(grid)
        assert warm_rows == cold_rows  # bit-for-bit, dataclasses included
        assert warm.stats.simulations == 0
        assert warm.stats.store_hits == len(cold_rows)

    def test_parallel_sweep_honours_the_warm_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        grid = small_grid(device_counts=(1, 2))
        cold = SweepEngine(store=ResultStore(path))
        cold_rows = cold.sweep(grid)

        warm = SweepEngine(store=ResultStore(path))
        assert warm.sweep(grid, workers=2) == cold_rows
        assert warm.stats.simulations == 0

    def test_parallel_cold_sweep_persists_for_later_runs(self, tmp_path):
        path = tmp_path / "store.jsonl"
        grid = small_grid(device_counts=(1, 2))
        cold = SweepEngine(store=ResultStore(path))
        cold_rows = cold.sweep(grid, workers=2)

        warm = SweepEngine(store=ResultStore(path))
        assert warm.sweep(grid) == cold_rows
        assert warm.stats.simulations == 0

    def test_engine_without_store_reports_no_store_traffic(self):
        engine = SweepEngine()
        engine.sweep(small_grid())
        assert engine.stats.store_hits == 0
        assert engine.stats.store_misses == 0

    def test_fleet_sweep_point_round_trips_through_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        grid = small_grid(
            designs={"design-a": design_a()}, models=["llama2-7b"],
            schedulers=("fcfs",), arrival_rates=(16.0,),
            routers=("round-robin",), replica_counts=(2,),
            serving_requests=60)
        cold = SweepEngine(store=ResultStore(path))
        cold_rows = cold.sweep(grid)
        warm = SweepEngine(store=ResultStore(path))
        assert warm.sweep(grid) == cold_rows
        assert warm.stats.simulations == 0


class TestClusterStoreIntegration:
    @pytest.fixture()
    def run_args(self):
        scenario = get_scenario("chat-serving")
        settings = scenario.make_settings(ScenarioKnobs(
            batch=1, input_tokens=64, output_tokens=16))
        spec = ServingSpec(replicas=2, arrival_rate=16.0, num_requests=60, seed=7)
        return LLAMA2_7B, design_a(), spec, settings

    def test_warm_store_serves_identical_report(self, tmp_path, run_args):
        model, config, spec, settings = run_args
        path = tmp_path / "store.jsonl"
        cold = simulate_cluster(model, config, spec, settings,
                                store=ResultStore(path))
        warm_store = ResultStore(path)
        warm = simulate_cluster(model, config, spec, settings, store=warm_store)
        assert warm_store.stats.hits == 1
        assert warm.to_dict(include_requests=False) == cold.to_dict(
            include_requests=False)

    def test_report_dict_round_trip_is_exact(self, run_args):
        model, config, spec, settings = run_args
        report = simulate_cluster(model, config, spec, settings)
        restored = cluster_report_from_dict(report.to_dict())
        assert restored.to_dict() == report.to_dict()
        assert restored.requests == report.requests

    def test_distinct_specs_never_collide(self, tmp_path, run_args):
        model, config, spec, settings = run_args
        store = ResultStore(tmp_path / "store.jsonl")
        first = simulate_cluster(model, config, spec, settings, store=store)
        other_spec = ServingSpec(replicas=2, arrival_rate=16.0,
                                 num_requests=60, seed=8)
        second = simulate_cluster(model, config, other_spec, settings, store=store)
        assert len(store) == 2
        assert first.to_dict(include_requests=False) != second.to_dict(
            include_requests=False)


class TestSweepGridDesignsExist:
    def test_predefined_designs_cover_grid_defaults(self):
        # The store tests rely on predefined design names; pin the two used.
        assert "baseline" in PREDEFINED_DESIGNS
        assert "design-a" in PREDEFINED_DESIGNS
