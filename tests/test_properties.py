"""Property-based tests (hypothesis) for the core cost models and invariants."""

from hypothesis import given, settings, strategies as st

from repro.cim.mxu import CIMMXU, CIMMXUConfig
from repro.common import Precision, ceil_div
from repro.hw.energy import EnergyBudget
from repro.mapping.mapspace import PartitionDim, enumerate_candidates
from repro.mapping.schedule import overlapped_operator_latency, pipelined_tile_latency
from repro.mapping.tiling import choose_vmem_tiling, matmul_tile_bytes
from repro.memory.interconnect import RingTopology
from repro.systolic.dataflows import Dataflow, systolic_gemm_cycles
from repro.vector.softmax import softmax_op_counts
from repro.workloads.operators import LayerCategory, MatMulOp

dims = st.integers(min_value=1, max_value=4096)
small_dims = st.integers(min_value=1, max_value=512)


class TestCeilDivProperties:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_ceil_div_bounds(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestSystolicProperties:
    @given(dims, dims, dims, st.sampled_from(list(Dataflow)))
    @settings(max_examples=60, deadline=None)
    def test_cycles_at_least_ideal(self, m, k, n, dataflow):
        result = systolic_gemm_cycles(m, k, n, 128, 128, dataflow)
        ideal = m * k * n / (128 * 128)
        assert result.total_cycles >= ideal
        assert 0.0 <= result.utilization <= 1.0

    @given(dims, dims, dims)
    @settings(max_examples=40, deadline=None)
    def test_double_buffering_never_hurts(self, m, k, n):
        naive = systolic_gemm_cycles(m, k, n, 128, 128, Dataflow.WEIGHT_STATIONARY)
        buffered = systolic_gemm_cycles(m, k, n, 128, 128, Dataflow.WEIGHT_STATIONARY_DB)
        assert buffered.total_cycles <= naive.total_cycles

    @given(small_dims, small_dims, small_dims)
    @settings(max_examples=40, deadline=None)
    def test_cycles_monotonic_in_m(self, m, k, n):
        shorter = systolic_gemm_cycles(m, k, n, 128, 128, Dataflow.WEIGHT_STATIONARY)
        longer = systolic_gemm_cycles(m + 7, k, n, 128, 128, Dataflow.WEIGHT_STATIONARY)
        assert longer.total_cycles >= shorter.total_cycles


class TestCIMMXUProperties:
    mxu = CIMMXU()

    @given(small_dims, dims, dims)
    @settings(max_examples=60, deadline=None)
    def test_cycles_at_least_ideal_and_utilization_bounded(self, m, k, n):
        result = self.mxu.gemm_cycles(m, k, n)
        ideal = m * k * n / self.mxu.macs_per_cycle
        assert result.total_cycles >= ideal * 0.999
        assert 0.0 <= result.utilization <= 1.0

    @given(small_dims, dims, dims, st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_batched_never_cheaper_than_single(self, m, k, n, instances):
        single = self.mxu.gemm_cycles(m, k, n, instances=1)
        batched = self.mxu.gemm_cycles(m, k, n, instances=instances)
        assert batched.total_cycles >= single.total_cycles
        assert batched.macs == instances * single.macs

    @given(small_dims, dims, dims)
    @settings(max_examples=40, deadline=None)
    def test_weight_residency_never_hurts(self, m, k, n):
        fresh = self.mxu.gemm_cycles(m, k, n, weights_resident=False)
        resident = self.mxu.gemm_cycles(m, k, n, weights_resident=True)
        assert resident.total_cycles <= fresh.total_cycles

    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_leakage_scales_with_grid(self, rows, cols):
        mxu = CIMMXU(config=CIMMXUConfig(grid_rows=rows, grid_cols=cols))
        per_core = CIMMXU(config=CIMMXUConfig(grid_rows=1, grid_cols=1)).leakage_power_w
        assert abs(mxu.leakage_power_w - rows * cols * per_core) < 1e-9


class TestEnergyBudgetProperties:
    @given(st.lists(st.tuples(st.sampled_from(["mxu", "vpu", "hbm"]),
                              st.floats(min_value=0, max_value=1e3)), max_size=20))
    def test_total_is_sum_of_components(self, contributions):
        budget = EnergyBudget()
        for component, joules in contributions:
            budget.add_dynamic(component, joules)
        assert abs(budget.total - sum(j for _, j in contributions)) < 1e-6

    @given(st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100),
           st.floats(min_value=0, max_value=10))
    def test_scaling_is_linear(self, dynamic, leakage, factor):
        budget = EnergyBudget()
        budget.add_dynamic("mxu", dynamic)
        budget.add_leakage("mxu", leakage)
        assert abs(budget.scaled(factor).total - factor * budget.total) < 1e-6


class TestSchedulingProperties:
    @given(st.integers(min_value=1, max_value=1000),
           st.floats(min_value=0, max_value=1e6), st.floats(min_value=0, max_value=1e6),
           st.floats(min_value=0, max_value=1e6))
    def test_double_buffering_never_slower(self, tiles, compute, load, store):
        buffered = pipelined_tile_latency(tiles, compute, load, store, double_buffered=True)
        serial = pipelined_tile_latency(tiles, compute, load, store, double_buffered=False)
        # Tolerate floating-point summation-order noise.
        assert buffered <= serial * (1 + 1e-9) + 1e-6

    @given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0, max_value=1e9),
           st.floats(min_value=0, max_value=1e9))
    def test_operator_latency_bounds(self, compute, weights, activations):
        latency = overlapped_operator_latency(compute, weights, activations)
        assert latency >= max(compute, weights, activations) - 1e-9
        assert latency <= compute + weights + activations + 1e-9


class TestTilingProperties:
    @given(dims, dims, dims)
    @settings(max_examples=60, deadline=None)
    def test_chosen_tiling_fits_and_covers(self, m, k, n):
        capacity = 16 * 2**20
        tiling = choose_vmem_tiling(m, k, n, Precision.INT8, capacity)
        assert tiling.covers_problem()
        assert matmul_tile_bytes(tiling.tile, Precision.INT8) <= capacity // 2


class TestMapspaceProperties:
    @given(small_dims, dims, dims, st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_candidates_cover_problem(self, m, k, n, batch, mxu_count):
        op = MatMulOp(name="p", category=LayerCategory.QKV_GEN, m=m, k=k, n=n, batch=batch)
        candidates = enumerate_candidates(op, mxu_count)
        assert candidates
        for candidate in candidates:
            if candidate.partition is PartitionDim.BATCH:
                assert candidate.instances_per_mxu * candidate.mxu_count >= batch
            elif candidate.partition is PartitionDim.M:
                assert candidate.m * candidate.mxu_count >= m
            elif candidate.partition is PartitionDim.N:
                assert candidate.n * candidate.mxu_count >= n
            elif candidate.partition is PartitionDim.K:
                assert candidate.k * candidate.mxu_count >= k
                assert candidate.needs_reduction


class TestSoftmaxProperties:
    @given(st.integers(min_value=1, max_value=1000), st.integers(min_value=1, max_value=4096))
    def test_ops_linear_in_rows(self, rows, length):
        one = softmax_op_counts(1, length)
        many = softmax_op_counts(rows, length)
        assert many.total_ops == rows * one.total_ops


class TestRingProperties:
    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=1, max_value=2**24))
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_at_least_bandwidth_bound(self, devices, payload):
        ring = RingTopology(num_devices=devices)
        cycles = ring.all_reduce_cycles(payload)
        lower_bound = 2 * (devices - 1) / devices * payload / ring.link.bytes_per_cycle
        assert cycles >= lower_bound - 1e-6
