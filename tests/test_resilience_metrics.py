"""Tests for the resilience metrics against hand-built miniature timelines."""

import pytest

from repro.serving.metrics import SLO, RequestMetrics, ResilienceSummary, slo_debt_s

#: Generous targets: a "good" request below meets them, a "bad" one does not.
TEST_SLO = SLO(ttft_s=1.0, tpot_s=0.1)


def req(request_id, arrival_s, ttft_s, output_tokens=1, tpot_s=0.0,
        disrupted=False):
    """One request built from its latency budget (finish derived)."""
    first = arrival_s + ttft_s
    finish = first + tpot_s * max(0, output_tokens - 1)
    return RequestMetrics.from_times(
        request_id=request_id, arrival_s=arrival_s, input_tokens=8,
        output_tokens=output_tokens, first_token_s=first, finish_s=finish,
        disrupted=disrupted)


def summarise(requests, *, crash_times=(), fault_count=None, shed=0,
              downtime=0.0, provisioned=100.0, start_s=0.0, end_s=20.0,
              **kwargs):
    return ResilienceSummary.compute(
        requests, TEST_SLO,
        fault_count=len(crash_times) if fault_count is None else fault_count,
        crash_times=crash_times, downtime_replica_s=downtime,
        provisioned_replica_s=provisioned, shed=shed,
        start_s=start_s, end_s=end_s, **kwargs)


class TestSloDebt:
    def test_meeting_request_owes_nothing(self):
        assert slo_debt_s(req(0, 0.0, ttft_s=0.5), TEST_SLO) == 0.0
        assert slo_debt_s(req(0, 0.0, ttft_s=1.0, output_tokens=10,
                              tpot_s=0.1), TEST_SLO) == 0.0

    def test_ttft_overshoot_is_the_debt(self):
        assert slo_debt_s(req(0, 0.0, ttft_s=3.5), TEST_SLO) == pytest.approx(2.5)

    def test_tpot_overshoot_scales_with_decode_tokens(self):
        # 9 decode steps, each 0.05s over target -> 0.45s of debt.
        request = req(0, 0.0, ttft_s=0.5, output_tokens=10, tpot_s=0.15)
        assert slo_debt_s(request, TEST_SLO) == pytest.approx(0.45)

    def test_single_token_request_has_no_tpot_debt(self):
        request = req(0, 0.0, ttft_s=0.5, output_tokens=1)
        assert slo_debt_s(request, TEST_SLO) == 0.0

    def test_both_overshoots_add(self):
        request = req(0, 0.0, ttft_s=2.0, output_tokens=5, tpot_s=0.2)
        assert slo_debt_s(request, TEST_SLO) == pytest.approx(1.0 + 4 * 0.1)


class TestCleanSummary:
    def test_clean_is_the_healthy_fixed_point(self):
        clean = ResilienceSummary.clean()
        assert clean.fault_count == 0
        assert clean.crash_count == 0
        assert clean.disrupted_requests == 0
        assert clean.shed_requests == 0
        assert clean.availability == 1.0
        assert clean.recovery_s == 0.0
        assert clean.slo_debt_s == 0.0


class TestAvailability:
    def test_ratio_of_up_to_billed_time(self):
        summary = summarise([req(0, 0.0, 0.1)], downtime=10.0, provisioned=90.0)
        assert summary.availability == pytest.approx(0.9)
        assert summary.downtime_replica_s == 10.0

    def test_no_billed_time_counts_as_available(self):
        summary = summarise([], downtime=0.0, provisioned=0.0)
        assert summary.availability == 1.0

    def test_never_exceeds_one(self):
        summary = summarise([req(0, 0.0, 0.1)], downtime=0.0)
        assert summary.availability == 1.0


class TestRecovery:
    def test_no_crashes_means_zero_recovery(self):
        summary = summarise([req(0, 0.0, ttft_s=5.0)])
        assert summary.recovery_s == 0.0
        assert summary.crash_count == 0

    def test_recovery_waits_for_the_first_good_window(self):
        # 5s windows from t=0.  Window [10, 15) is all SLO misses (the
        # crash's wake), [15, 20) is healthy again -> recovery ends at 20.
        requests = [req(0, 2.0, ttft_s=0.1),       # window [0, 5): healthy
                    req(1, 11.0, ttft_s=3.0),      # window [10, 15): miss
                    req(2, 16.5, ttft_s=0.2)]      # window [15, 20): healthy
        summary = summarise(requests, crash_times=[10.0])
        assert summary.recovery_s == pytest.approx(10.0)
        assert summary.crash_count == 1

    def test_worst_crash_is_reported(self):
        requests = [req(0, 2.0, ttft_s=0.1),
                    req(1, 11.0, ttft_s=3.0),
                    req(2, 16.5, ttft_s=0.2)]
        # Crash at 1.0 recovers at the end of window [0, 5) -> 4s; crash at
        # 10.0 recovers at 20 -> 10s.  The summary takes the worst.
        summary = summarise(requests, crash_times=[1.0, 10.0])
        assert summary.recovery_s == pytest.approx(10.0)
        assert summary.crash_count == 2

    def test_unrecovered_run_reports_inf(self):
        requests = [req(0, 11.0, ttft_s=3.0), req(1, 13.0, ttft_s=4.0)]
        summary = summarise(requests, crash_times=[10.0])
        assert summary.recovery_s == float("inf")

    def test_recovery_window_must_come_after_the_crash(self):
        # The only healthy window ends at 5.0 -- before the crash, so it
        # cannot count as recovery.
        requests = [req(0, 2.0, ttft_s=0.1), req(1, 12.0, ttft_s=3.0)]
        summary = summarise(requests, crash_times=[10.0])
        assert summary.recovery_s == float("inf")

    def test_window_width_changes_the_bucketing(self):
        requests = [req(0, 11.0, ttft_s=0.1)]
        summary = summarise(requests, crash_times=[10.0], window_s=2.0)
        # Healthy finish at 11.1 falls in window [10, 12) -> ends at 12.
        assert summary.recovery_s == pytest.approx(2.0)

    def test_recovery_target_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            summarise([], window_s=0.0)
        with pytest.raises(ValueError, match="recovery_target"):
            summarise([], recovery_target=0.0)
        with pytest.raises(ValueError, match="recovery_target"):
            summarise([], recovery_target=1.5)


class TestGoodputUnderFailure:
    def test_counts_only_undisrupted_slo_meeting_work(self):
        requests = [req(0, 0.0, ttft_s=0.1, output_tokens=10, tpot_s=0.05),
                    req(1, 1.0, ttft_s=5.0, output_tokens=10, tpot_s=0.05),
                    req(2, 2.0, ttft_s=0.1, output_tokens=10, tpot_s=0.05,
                        disrupted=True)]
        summary = summarise(requests, start_s=0.0, end_s=10.0)
        # Only request 0 counts: request 1 missed the SLO, request 2 was
        # disrupted.  10 tokens over a 10s makespan.
        assert summary.goodput_under_failure_requests_per_second == pytest.approx(0.1)
        assert summary.goodput_under_failure_tokens_per_second == pytest.approx(1.0)
        assert summary.disrupted_requests == 1

    def test_zero_makespan_reports_zero_goodput(self):
        summary = summarise([req(0, 0.0, 0.1)], start_s=5.0, end_s=5.0)
        assert summary.goodput_under_failure_requests_per_second == 0.0
        assert summary.goodput_under_failure_tokens_per_second == 0.0

    def test_debt_sums_over_all_completed_requests(self):
        requests = [req(0, 0.0, ttft_s=3.5), req(1, 1.0, ttft_s=2.0)]
        summary = summarise(requests)
        assert summary.slo_debt_s == pytest.approx(2.5 + 1.0)

    def test_shed_and_fault_counts_pass_through(self):
        summary = summarise([], shed=3, fault_count=7)
        assert summary.shed_requests == 3
        assert summary.fault_count == 7
