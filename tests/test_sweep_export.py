"""Tests for the JSON/CSV exporters of sweep results."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.core.designs import tpuv4i_baseline
from repro.sweep.engine import SweepEngine
from repro.sweep.export import FIELDNAMES, to_csv, to_json, write_csv, write_json
from repro.sweep.grid import make_point
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig

TINY_LLM = LLMConfig(name="export-tiny-llm", num_layers=2, num_heads=8, d_model=512,
                     d_ff=2048, vocab_size=1000)
TINY_DIT = DiTConfig(name="export-tiny-dit", depth=2, num_heads=4, d_model=256)


@pytest.fixture(scope="module")
def rows():
    points = [
        make_point("baseline", tpuv4i_baseline(), TINY_LLM, batch=2, input_tokens=64,
                   output_tokens=16, decode_kv_samples=2),
        make_point("baseline", tpuv4i_baseline(), TINY_DIT, batch=1, image_resolution=256,
                   sampling_steps=2),
    ]
    return SweepEngine().sweep(points)


class TestJson:
    def test_round_trip_preserves_values(self, rows):
        decoded = json.loads(to_json(rows))
        assert len(decoded) == len(rows)
        assert decoded[0]["design"] == "baseline"
        assert decoded[0]["latency_seconds"] == rows[0].latency_seconds
        assert set(decoded[0]) == set(FIELDNAMES)

    def test_deterministic_bytes(self, rows):
        assert to_json(rows) == to_json(list(rows))

    def test_write_json(self, rows, tmp_path):
        path = write_json(rows, tmp_path / "rows.json")
        assert json.loads(path.read_text())[1]["kind"] == "dit"


class TestCsv:
    def test_header_and_row_count(self, rows):
        parsed = list(csv.DictReader(io.StringIO(to_csv(rows))))
        assert len(parsed) == len(rows)
        assert list(parsed[0]) == list(FIELDNAMES)
        assert parsed[0]["workload"] == "export-tiny-llm"
        assert float(parsed[0]["throughput"]) == pytest.approx(rows[0].throughput)

    def test_write_csv(self, rows, tmp_path):
        path = write_csv(rows, tmp_path / "rows.csv")
        assert path.read_text().startswith(",".join(FIELDNAMES))
