"""Telemetry core, exporters, report renderer and the CLI observability flags.

The contract under test, in order of importance:

1. **Telemetry never perturbs the simulation** — ServingReport /
   ClusterReport are bit-for-bit identical with tracing on vs. off, on
   every execution path (serial, sharded, fluid, cluster chaos).
2. **Sharded telemetry equals serial telemetry** — the quiescent-segment
   merge reassembles spans/events/gauges exactly, cumulative gauge fields
   (SLO attainment) included.
3. **The Chrome trace-event schema is pinned** — a golden file in
   tests/golden/ locks phase names, pid/tid mapping and fault
   instant-event fields, so Perfetto compatibility cannot rot silently.
4. The CLI flags compose: ``--trace-out`` with ``--profile``, with
   ``--check-determinism``, and ``repro-sim report`` renders both formats.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.cli import main
from repro.core.designs import design_a
from repro.obs import (
    Telemetry,
    load_trace_file,
    render_report,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.export import (
    TRACE_PID,
    chrome_trace_dict,
    load_chrome_trace,
    load_metrics_jsonl,
    metrics_lines,
)
from repro.obs.report import sparkline
from repro.serving.cluster import ClusterSimulator
from repro.serving.faults import parse_fault
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator, simulate_serving
from repro.serving.spec import ServingSpec
from repro.serving.trace import generate_trace
from repro.workloads.chat import DEFAULT_REQUEST_MIX
from repro.workloads.llm import GPT3_30B
from repro.workloads.registry import get_scenario
from repro.workloads.scenario import ScenarioKnobs

GOLDEN = pathlib.Path(__file__).parent / "golden" / "chrome_trace.json"

SLO_SPEC = SLO(ttft_s=1.0, tpot_s=0.1)


def make_trace(num_requests=80, rate=20.0, seed=3):
    return generate_trace("poisson", DEFAULT_REQUEST_MIX, rate,
                          num_requests, seed)


def run_serial(trace, telemetry=None, **kwargs):
    simulator = ServingSimulator(GPT3_30B, design_a())
    return simulator.run(trace, slo=SLO_SPEC, telemetry=telemetry, **kwargs)


def synthetic_telemetry() -> Telemetry:
    """A small hand-built telemetry object with every record kind."""
    tel = Telemetry(gauge_interval_s=0.5)
    tel.span("replica-0", "prefill", 0.0, 0.25, {"batch": 4})
    tel.span("replica-0", "decode", 0.25, 1.5,
             {"batch": 4, "context_bucket": 1, "steps": 10, "tokens": 40})
    tel.span("replica-1", "cold-start", 0.0, 5.0)
    tel.event("autoscaler", "scale-up", 0.4, {"from": 1, "to": 2})
    tel.event("faults", "crash", 1.0,
              {"replica": 0, "duration_s": 5.0, "victims": 3}, scope="g")
    tel.gauge("replica-0", "queue_depth", 0.0, 3.0)
    tel.gauge("replica-0", "queue_depth", 0.5, 1.0)
    tel.count("cluster.requests", 8)
    tel.count("cluster.shed")
    return tel


# ---------------------------------------------------------------------------
# Telemetry core
# ---------------------------------------------------------------------------
class TestTelemetryCore:
    def test_disabled_records_nothing(self):
        tel = Telemetry(enabled=False)
        tel.span("t", "s", 0.0, 1.0)
        tel.event("t", "e", 0.5)
        tel.gauge("t", "g", 0.0, 1.0)
        tel.count("c")
        tel.wall_event("t", "w")
        with tel.wall_span("t", "ws"):
            pass
        assert not tel
        assert tel.summary() == {"spans": 0, "events": 0, "gauges": 0,
                                 "counters": {}}

    def test_enabled_is_truthy_and_collects(self):
        tel = synthetic_telemetry()
        assert tel
        assert tel.summary() == {
            "spans": 3, "events": 2, "gauges": 2,
            "counters": {"cluster.requests": 8, "cluster.shed": 1}}

    def test_tracks_are_sorted_and_distinct(self):
        tel = synthetic_telemetry()
        assert tel.tracks() == ["autoscaler", "faults", "replica-0",
                                "replica-1"]

    def test_sorted_events_monotonic(self):
        tel = Telemetry()
        tel.event("t", "late", 2.0)
        tel.event("t", "early", 1.0)
        assert [e.name for e in tel.sorted_events()] == ["early", "late"]

    def test_wall_span_records_duration(self):
        tel = Telemetry()
        with tel.wall_span("sweep", "work", {"points": 1}):
            pass
        (span,) = tel.spans
        assert span.track == "sweep" and span.name == "work"
        assert span.end_s >= span.start_s >= 0.0

    def test_gauge_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="gauge_interval_s"):
            Telemetry(gauge_interval_s=0.0)


# ---------------------------------------------------------------------------
# Exporters: Chrome trace + metrics JSONL, round-trips and golden schema
# ---------------------------------------------------------------------------
class TestExporters:
    def test_chrome_trace_golden_schema(self):
        """The exact Chrome trace-event JSON is pinned by a golden file.

        Regenerate (after an intentional schema change) with:
        ``python tests/golden/regenerate.py``.
        """
        produced = chrome_trace_dict(synthetic_telemetry())
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert produced == golden

    def test_chrome_tid_mapping_is_sorted_track_order(self):
        trace = chrome_trace_dict(synthetic_telemetry())
        names = {record["tid"]: record["args"]["name"]
                 for record in trace["traceEvents"]
                 if record["ph"] == "M" and record["name"] == "thread_name"}
        assert names == {0: "autoscaler", 1: "faults", 2: "replica-0",
                         3: "replica-1"}
        assert all(record["pid"] == TRACE_PID
                   for record in trace["traceEvents"])

    def test_fault_instant_events_are_global_scope(self):
        trace = chrome_trace_dict(synthetic_telemetry())
        crash = next(record for record in trace["traceEvents"]
                     if record.get("name") == "crash")
        assert crash["ph"] == "i"
        assert crash["s"] == "g"
        assert crash["args"]["victims"] == 3

    def test_chrome_trace_round_trips(self, tmp_path):
        tel = synthetic_telemetry()
        path = write_chrome_trace(tel, tmp_path / "t.json")
        data = load_chrome_trace(path)
        assert data["time_domain"] == "simulated"
        assert len(data["spans"]) == 3
        assert len(data["events"]) == 2
        assert data["gauges"] == [
            {"track": "replica-0", "name": "queue_depth", "t_s": 0.0,
             "value": 3.0},
            {"track": "replica-0", "name": "queue_depth", "t_s": 0.5,
             "value": 1.0}]
        assert data["counters"] == {"cluster.requests": 8, "cluster.shed": 1}

    def test_metrics_jsonl_round_trips(self, tmp_path):
        tel = synthetic_telemetry()
        path = write_metrics_jsonl(tel, tmp_path / "m.jsonl",
                                   time_domain="wall")
        data = load_metrics_jsonl(path)
        assert data["time_domain"] == "wall"
        assert len(data["spans"]) == 3
        assert data["counters"] == {"cluster.requests": 8, "cluster.shed": 1}

    def test_metrics_first_line_is_meta(self):
        lines = metrics_lines(synthetic_telemetry())
        assert lines[0]["type"] == "meta"
        assert lines[0]["time_domain"] == "simulated"

    def test_load_trace_file_sniffs_both_formats(self, tmp_path):
        tel = synthetic_telemetry()
        chrome = write_chrome_trace(tel, tmp_path / "t.json")
        jsonl = write_metrics_jsonl(tel, tmp_path / "m.jsonl")
        assert load_trace_file(chrome) == load_chrome_trace(chrome)
        assert load_trace_file(jsonl) == load_metrics_jsonl(jsonl)

    def test_load_trace_file_rejects_empty(self, tmp_path):
        empty = tmp_path / "e.json"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="empty trace"):
            load_trace_file(empty)


# ---------------------------------------------------------------------------
# Report renderer
# ---------------------------------------------------------------------------
class TestReport:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        line = sparkline([0.0, 1.0], width=2)
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(1000)), width=60)) == 60

    def test_render_sections(self, tmp_path):
        path = write_metrics_jsonl(synthetic_telemetry(), tmp_path / "m.jsonl")
        text = render_report(load_trace_file(path))
        assert "== time-series gauges ==" in text
        assert "replica-0:queue_depth" in text
        assert "== action log ==" in text
        assert "scale-up" in text and "crash" in text
        assert "== span totals ==" in text
        assert "== counters ==" in text
        assert "cluster.requests = 8" in text

    def test_render_empty_trace(self):
        text = render_report({"time_domain": "simulated", "gauges": [],
                              "events": [], "spans": [], "counters": {}})
        assert "empty trace" in text


# ---------------------------------------------------------------------------
# The core invariant: tracing on vs. off is bit-for-bit identical
# ---------------------------------------------------------------------------
class TestTracedIdentity:
    def test_serial_report_identical_with_tracing(self):
        trace = make_trace()
        plain = run_serial(trace)
        traced = run_serial(trace, telemetry=Telemetry())
        assert traced.to_dict() == plain.to_dict()

    def test_sharded_report_identical_with_tracing(self):
        trace = make_trace(num_requests=120, rate=0.5)
        plain = run_serial(trace, shards=4)
        traced = run_serial(trace, shards=4, telemetry=Telemetry())
        assert traced.to_dict() == plain.to_dict()

    def test_sharded_telemetry_equals_serial_telemetry(self):
        """The quiescent-segment merge reassembles the exact serial trace.

        The trace must contain genuine quiescent instants (or the slices
        merge back into one segment and sharding never happens) and the
        run must be forced onto multiple workers (or a single-CPU host
        silently falls back to the serial path) — without both, this
        equality would pass vacuously.
        """
        burst = make_trace(num_requests=60, rate=0.5)
        trace = burst + tuple(
            dataclasses.replace(request, arrival_s=request.arrival_s + 1e5,
                                request_id=request.request_id + 1000)
            for request in burst)
        serial_tel, sharded_tel = Telemetry(), Telemetry()
        run_serial(trace, telemetry=serial_tel)
        run_serial(trace, shards=4, shard_workers=4, telemetry=sharded_tel)
        # Same grid, same spans, same counters — bit-for-bit, not almost.
        assert sharded_tel.spans == serial_tel.spans
        assert sharded_tel.events == serial_tel.events
        assert sharded_tel.gauges == serial_tel.gauges
        assert sharded_tel.counters == serial_tel.counters

    def test_disabled_instance_equals_none(self):
        trace = make_trace()
        plain = run_serial(trace)
        disabled = Telemetry(enabled=False)
        report = run_serial(trace, telemetry=disabled)
        assert report.to_dict() == plain.to_dict()
        assert disabled.summary()["spans"] == 0

    def test_fluid_report_identical_with_tracing(self):
        scenario = get_scenario("chat-serving")
        settings = scenario.make_settings(ScenarioKnobs(
            batch=8, input_tokens=64, output_tokens=16))
        spec = ServingSpec(arrival_rate=4.0, num_requests=50,
                           fidelity="fluid")
        tel = Telemetry()
        plain = simulate_serving(GPT3_30B, design_a(), spec, settings)
        traced = simulate_serving(GPT3_30B, design_a(), spec, settings,
                                  telemetry=tel)
        assert traced.to_dict() == plain.to_dict()
        # Fluid runs contribute summary records only — never loop events.
        assert [span.name for span in tel.spans] == ["fluid-run"]
        assert tel.gauges == []

    def test_cluster_chaos_identical_with_tracing(self):
        trace = make_trace(num_requests=100, rate=30.0, seed=7)
        faults = (parse_fault("replica-crash:at_s=1,duration_s=4,replica=0"),)

        def run(telemetry=None):
            replicas = [ServingSimulator(GPT3_30B, design_a())
                        for _ in range(3)]
            cluster = ClusterSimulator(replicas, autoscaler="queue-depth",
                                       faults=faults)
            return cluster.run(trace, slo=SLO_SPEC, telemetry=telemetry)

        tel = Telemetry()
        plain = run()
        traced = run(telemetry=tel)
        assert traced.to_dict() == plain.to_dict()
        tracks = tel.tracks()
        assert "autoscaler" in tracks and "faults" in tracks
        assert any(track.startswith("replica-") for track in tracks)
        crash_events = [e for e in tel.events
                        if e.track == "faults" and e.name == "crash"]
        assert crash_events and crash_events[0].scope == "g"
        assert any(e.name == "restart" for e in tel.events
                   if e.track == "faults")

    def test_serving_telemetry_content(self):
        """Spot-check the semantic content of a traced serving run."""
        trace = make_trace()
        tel = Telemetry()
        report = run_serial(trace, telemetry=tel)
        assert tel.counters["serve.completed"] == report.completed
        assert tel.counters["serve.prefill_steps"] == report.prefill_steps
        assert tel.counters["serve.decode_steps"] == report.decode_steps
        names = {gauge.name for gauge in tel.gauges}
        assert {"queue_depth", "batch_occupancy",
                "kv_utilisation", "slo_attainment"} <= names
        # Gauge samples land on the absolute interval grid.
        interval = tel.gauge_interval_s
        queue = [g for g in tel.gauges if g.name == "queue_depth"]
        assert all(abs(g.time_s / interval - round(g.time_s / interval))
                   < 1e-9 or g is queue[-1] for g in queue)
        # Decode spans merge: steps accumulate, tokens = steps * batch sum.
        decode = [s for s in tel.spans if s.name == "decode"]
        assert decode and all(s.args["steps"] >= 1 for s in decode)


# ---------------------------------------------------------------------------
# CLI: flags, composition, report subcommand
# ---------------------------------------------------------------------------
SERVE_SMALL = ["serve", "--design", "design-a", "--requests", "40",
               "--rate", "20"]


def run_cli(capsys, *argv):
    exit_code = main(list(argv))
    captured = capsys.readouterr()
    return exit_code, captured.out


class TestObsCLI:
    def test_serve_writes_both_outputs(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.jsonl"
        code, out = run_cli(capsys, *SERVE_SMALL,
                            "--trace-out", str(trace_out),
                            "--metrics-out", str(metrics_out))
        assert code == 0
        assert "wrote Chrome trace" in out and "wrote metrics JSONL" in out
        trace = json.loads(trace_out.read_text(encoding="utf-8"))
        assert trace["otherData"]["repro.time_domain"] == "simulated"
        assert any(record["ph"] == "X" for record in trace["traceEvents"])
        assert load_trace_file(metrics_out)["counters"]

    def test_profile_and_trace_out_compose(self, capsys, tmp_path):
        """Regression: --profile and --trace-out together, single export."""
        trace_out = tmp_path / "trace.json"
        code, out = run_cli(capsys, *SERVE_SMALL, "--profile",
                            "--profile-out", str(tmp_path / "p.pstats"),
                            "--trace-out", str(trace_out))
        assert code == 0
        assert "profile: top functions" in out
        assert out.count("wrote Chrome trace") == 1
        trace = json.loads(trace_out.read_text(encoding="utf-8"))
        spans = [r for r in trace["traceEvents"] if r["ph"] == "X"]
        # One run's worth of spans: the profiled run is the traced run.
        names = {r["name"] for r in spans}
        assert "prefill" in names and "decode" in names

    def test_check_determinism_validates_on_vs_off(self, capsys, tmp_path):
        code, out = run_cli(capsys, *SERVE_SMALL, "--check-determinism",
                            "--trace-out", str(tmp_path / "t.json"))
        assert code == 0
        assert "traced and untraced runs agree bit-for-bit" in out

    def test_report_renders_both_formats(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.jsonl"
        run_cli(capsys, *SERVE_SMALL, "--trace-out", str(trace_out),
                "--metrics-out", str(metrics_out))
        for path in (trace_out, metrics_out):
            code, out = run_cli(capsys, "report", str(path))
            assert code == 0
            assert "== time-series gauges ==" in out
            assert "serve:queue_depth" in out

    def test_report_missing_file_fails_cleanly(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="cannot read trace"):
            main(["report", str(tmp_path / "nope.json")])

    def test_fleet_chaos_trace_has_fault_markers(self, capsys, tmp_path):
        trace_out = tmp_path / "fleet.json"
        code, _ = run_cli(capsys, "serve", "--design", "design-a",
                          "--requests", "60", "--rate", "30",
                          "--replicas", "2",
                          "--faults",
                          "replica-crash:at_s=1,duration_s=3,replica=0",
                          "--trace-out", str(trace_out))
        assert code == 0
        trace = json.loads(trace_out.read_text(encoding="utf-8"))
        instants = [r for r in trace["traceEvents"] if r["ph"] == "i"]
        crash = next(r for r in instants if r["name"] == "crash")
        assert crash["s"] == "g"
        threads = {r["args"]["name"] for r in trace["traceEvents"]
                   if r["ph"] == "M" and r["name"] == "thread_name"}
        assert {"replica-0", "replica-1", "faults"} <= threads

    def test_sweep_trace_out_is_wall_domain(self, capsys, tmp_path):
        metrics_out = tmp_path / "sweep.jsonl"
        code, _ = run_cli(capsys, "sweep", "--designs", "design-a",
                          "--models", "gpt3-30b", "--batches", "1",
                          "--precisions", "int8",
                          "--metrics-out", str(metrics_out))
        assert code == 0
        data = load_trace_file(metrics_out)
        assert data["time_domain"] == "wall"
        assert any(span["name"].startswith("point:")
                   for span in data["spans"])

    def test_optimize_trace_out_has_promote_prune(self, capsys, tmp_path):
        trace_out = tmp_path / "opt.json"
        code, _ = run_cli(capsys, "optimize", "--designs", "design-a",
                          "design-b", "--replica-counts", "1", "2",
                          "--requests", "30", "--rate", "0.05",
                          "--trace-out", str(trace_out))
        assert code == 0
        data = load_trace_file(trace_out)
        assert data["time_domain"] == "wall"
        names = {event["name"] for event in data["events"]}
        assert names & {"promote", "prune"}
        promote = next(e for e in data["events"] if e["name"] == "promote")
        assert promote["args"]["fidelity"] in ("fluid", "short")
        assert "margin" in promote["args"]
        # Every candidate evaluation is a wall span: the timeline shows
        # where the search budget went, and which runs the store answered.
        evaluations = [span for span in data["spans"]
                       if span["name"].startswith("evaluate:")]
        assert evaluations
        assert {span["name"].split(":", 1)[1] for span in evaluations} <= {
            "fluid", "short", "full"}
        assert all("store_hit" in span["args"] for span in evaluations)
        assert all(span["dur_s"] >= 0 for span in evaluations)

    def test_verbose_flag_parses(self, capsys):
        code, _ = run_cli(capsys, "-vv", *SERVE_SMALL)
        assert code == 0
