"""Tests for the sweep engine: grids, caching invariants and parallel fan-out.

The headline invariants pinned here:

* a sweep with ``workers=4`` reproduces the serial rows exactly (and
  byte-identically once exported);
* repeated points (the shared TPUv4i baseline) simulate once;
* a cached re-sweep performs zero new graph simulations;
* single- and multi-device evaluations match the direct simulator paths.
"""

from __future__ import annotations

import pytest

from repro.common import Precision
from repro.core.designs import design_a, tpuv4i_baseline
from repro.core.explorer import ArchitectureExplorer
from repro.core.simulator import (
    DiTInferenceSettings,
    InferenceSimulator,
    LLMInferenceSettings,
)
from repro.parallel.multi_device import MultiTPUSystem
from repro.sweep.cache import CachingInferenceSimulator, ResultCache
from repro.sweep.engine import SweepEngine, point_key
from repro.sweep.export import to_csv, to_json
from repro.sweep.grid import SweepGrid, SweepPoint, default_grid, make_point
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig

TINY_LLM = LLMConfig(name="sweep-tiny-llm", num_layers=2, num_heads=8, d_model=512, d_ff=2048,
                     vocab_size=1000)
TINY_DIT = DiTConfig(name="sweep-tiny-dit", depth=2, num_heads=4, d_model=256)


def tiny_points(designs=None):
    """A small mixed LLM/DiT point list over the given designs."""
    designs = designs if designs is not None else [("baseline", tpuv4i_baseline()),
                                                   ("design-a", design_a())]
    points = []
    for label, config in designs:
        points.append(make_point(label, config, TINY_LLM, batch=2, input_tokens=64,
                                 output_tokens=16, decode_kv_samples=2))
        points.append(make_point(label, config, TINY_DIT, batch=1, image_resolution=256,
                                 sampling_steps=2))
    return points


class TestGrid:
    def test_expansion_size_and_order(self):
        grid = SweepGrid(designs={"baseline": tpuv4i_baseline(), "design-a": design_a()},
                         models=["gpt3-30b", "dit-xl-2"],
                         precisions=(Precision.INT8, Precision.BF16), batches=(1, 8))
        points = grid.points()
        assert len(points) == len(grid) == 16
        # designs vary slowest, then models, precisions, batches.
        assert [p.design for p in points[:8]] == ["baseline"] * 8
        assert points[0].batch == 1 and points[1].batch == 8
        assert points[0].precision is Precision.INT8
        assert points[2].precision is Precision.BF16

    def test_default_grid_covers_registry_and_precisions(self):
        grid = default_grid()
        points = grid.points()
        assert {p.workload for p in points} >= {"gpt3-30b", "gpt3-175b", "llama2-7b",
                                                "llama2-13b", "dit-xl-2"}
        assert {p.precision for p in points} == {Precision.INT8, Precision.BF16}
        assert {p.batch for p in points} == {1, 8}

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(models=[])
        with pytest.raises(ValueError):
            SweepGrid(batches=())

    def test_point_settings_type_must_match_model(self):
        with pytest.raises(ValueError):
            SweepPoint(design="x", config=tpuv4i_baseline(), model=TINY_LLM,
                       settings=DiTInferenceSettings(batch=1, image_resolution=256,
                                                     sampling_steps=2))

    def test_point_validation(self):
        with pytest.raises(ValueError):
            make_point("x", tpuv4i_baseline(), TINY_LLM, devices=0)
        with pytest.raises(ValueError):
            make_point("x", tpuv4i_baseline(), TINY_LLM, parallelism="data")


class TestCachingSimulator:
    def test_repeat_graphs_simulate_once(self):
        cache = ResultCache()
        simulator = CachingInferenceSimulator(tpuv4i_baseline(), cache)
        first = simulator.simulate_llm_prefill_layer(
            TINY_LLM, LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16))
        second = simulator.simulate_llm_prefill_layer(
            TINY_LLM, LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16))
        assert first is second
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_matches_uncached_simulator(self):
        settings = LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16,
                                        decode_kv_samples=2)
        cached = CachingInferenceSimulator(tpuv4i_baseline())
        plain = InferenceSimulator(tpuv4i_baseline())
        assert (cached.simulate_llm_inference(TINY_LLM, settings).total_seconds
                == plain.simulate_llm_inference(TINY_LLM, settings).total_seconds)

    def test_cache_shared_across_chips_never_collides(self):
        cache = ResultCache()
        settings = DiTInferenceSettings(batch=1, image_resolution=256, sampling_steps=2)
        baseline = CachingInferenceSimulator(tpuv4i_baseline(), cache)
        cim = CachingInferenceSimulator(design_a(), cache)
        a = baseline.simulate_dit_block(TINY_DIT, settings)
        b = cim.simulate_dit_block(TINY_DIT, settings)
        assert a.total_seconds != b.total_seconds
        assert cache.stats.misses == 2


class TestEngineCaching:
    def test_repeated_baseline_point_simulates_once(self):
        engine = SweepEngine()
        baseline_point = tiny_points()[0]
        rows = engine.sweep([baseline_point, baseline_point, baseline_point])
        assert rows[0] == rows[1] == rows[2]
        assert engine.stats.point_misses == 1
        assert engine.stats.point_hits == 2

    def test_cached_resweep_performs_zero_new_simulations(self):
        engine = SweepEngine()
        points = tiny_points()
        first = engine.sweep(points)
        simulations_before = engine.stats.simulations
        assert simulations_before > 0
        second = engine.sweep(points)
        assert second == first
        assert engine.stats.simulations == simulations_before
        assert engine.stats.point_hits == len(points)

    def test_evaluate_matches_sweep_row(self):
        engine = SweepEngine()
        point = tiny_points()[1]
        assert engine.evaluate(point) == SweepEngine().sweep([point])[0]

    def test_result_metadata(self):
        row = SweepEngine().evaluate(tiny_points()[0])
        assert row.design == "baseline"
        assert row.workload == "sweep-tiny-llm"
        assert row.kind == "llm" and row.item_unit == "token"
        assert row.precision == "int8" and row.batch == 2
        assert row.items == 2 * 16
        assert row.latency_seconds > 0 and row.mxu_energy_joules > 0
        assert row.throughput == pytest.approx(row.items / row.latency_seconds)
        assert row.cache_key == point_key(tiny_points()[0])


class TestParallelSweep:
    def test_parallel_rows_identical_to_serial(self):
        points = tiny_points()
        serial = SweepEngine().sweep(points)
        parallel = SweepEngine().sweep(points, workers=4)
        assert parallel == serial
        assert to_json(parallel).encode() == to_json(serial).encode()
        assert to_csv(parallel).encode() == to_csv(serial).encode()

    def test_parallel_resweep_hits_point_cache(self):
        engine = SweepEngine()
        points = tiny_points()
        first = engine.sweep(points, workers=2)
        simulations = engine.stats.simulations
        second = engine.sweep(points, workers=2)
        assert second == first
        assert engine.stats.simulations == simulations

    def test_workers_one_is_serial(self):
        points = tiny_points()
        assert SweepEngine().sweep(points, workers=1) == SweepEngine().sweep(points)

    def test_warm_cache_parallel_stats_equal_serial(self):
        # Regression for cache stats lost across the process boundary: a
        # parallel sweep on an engine whose graph cache is already warm
        # (an earlier sweep sharing graphs) must neither re-simulate those
        # graphs in the workers nor count them as misses — its statistics
        # must equal a serial engine's exactly.
        first = tiny_points()
        second = [make_point(label, config, TINY_LLM, batch=2, input_tokens=64,
                             output_tokens=16, decode_kv_samples=2, devices=devices)
                  for label, config in (("baseline", tpuv4i_baseline()),
                                        ("design-a", design_a()))
                  for devices in (2, 4)]  # shares per-layer graphs with `first`
        serial = SweepEngine()
        serial.sweep(first)
        serial_rows = serial.sweep(second)

        parallel = SweepEngine()
        parallel.sweep(first)
        rows = parallel.sweep(second, workers=4)

        assert rows == serial_rows
        assert parallel.stats == serial.stats
        assert parallel.stats.graph_hits > 0  # the warm graphs were hits

    def test_engine_default_workers_used(self):
        points = tiny_points()[:2]
        engine = SweepEngine(workers=2)
        assert engine.sweep(points) == SweepEngine().sweep(points)


class TestTableIVParity:
    """workers=4 reproduces the exact serial Table IV exploration rows."""

    @pytest.fixture(scope="class")
    def explorer_kwargs(self):
        return dict(
            llm=TINY_LLM, dit=TINY_DIT,
            llm_settings=LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16,
                                              decode_kv_samples=2),
            dit_settings=DiTInferenceSettings(batch=1, image_resolution=256,
                                              sampling_steps=2))

    def test_workers4_matches_serial_rows(self, explorer_kwargs):
        serial = ArchitectureExplorer(**explorer_kwargs).explore()
        parallel = ArchitectureExplorer(**explorer_kwargs, workers=4).explore()
        assert parallel == serial
        assert len(serial) == 2 * (1 + 9)  # baseline + Table IV points, both workloads

    def test_shared_engine_reuses_points_across_explorations(self, explorer_kwargs):
        engine = SweepEngine()
        first = ArchitectureExplorer(**explorer_kwargs, engine=engine).explore()
        simulations = engine.stats.simulations
        second = ArchitectureExplorer(**explorer_kwargs, engine=engine).explore()
        assert second == first
        assert engine.stats.simulations == simulations


class TestMultiDevicePoints:
    def test_multi_device_point_matches_direct_system(self):
        settings = LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16,
                                        decode_kv_samples=2)
        point = SweepPoint(design="design-a", config=design_a(), model=TINY_LLM,
                           settings=settings, devices=2)
        row = SweepEngine().evaluate(point)
        direct = MultiTPUSystem(design_a(), 2).simulate_llm(TINY_LLM, settings)
        assert row.throughput == direct.throughput
        assert row.communication_seconds == direct.communication_seconds
        assert row.mxu_energy_joules == direct.mxu_energy_joules

    def test_device_axis_shares_per_layer_graphs(self):
        engine = SweepEngine()
        settings = LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16,
                                        decode_kv_samples=2)
        points = [SweepPoint(design="design-a", config=design_a(), model=TINY_LLM,
                             settings=settings, devices=n) for n in (1, 2, 4)]
        engine.sweep(points)
        # The per-layer graphs are identical across device counts, so only the
        # first point simulates; the others are pure cache hits.
        assert engine.stats.simulations == 3  # prefill + 2 decode KV samples
        assert engine.stats.graph_hits >= 6

    def test_parallel_device_axis_simulates_like_serial(self):
        """Pool tasks are grouped by chip config, so fan-out keeps graph sharing."""
        settings = LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=16,
                                        decode_kv_samples=2)
        points = [SweepPoint(design="design-a", config=design_a(), model=TINY_LLM,
                             settings=settings, devices=n) for n in (1, 2, 4)]
        serial_engine, parallel_engine = SweepEngine(), SweepEngine()
        serial_rows = serial_engine.sweep(points)
        parallel_rows = parallel_engine.sweep(points, workers=3)
        assert parallel_rows == serial_rows
        assert parallel_engine.stats.simulations == serial_engine.stats.simulations == 3

    def test_injected_simulator_config_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiTPUSystem(design_a(), 2,
                           simulator=InferenceSimulator(tpuv4i_baseline()))

    def test_tensor_parallel_dit_point_raises(self):
        point = SweepPoint(design="design-a", config=design_a(), model=TINY_DIT,
                           settings=DiTInferenceSettings(batch=1, image_resolution=256,
                                                         sampling_steps=2),
                           devices=2, parallelism="tensor")
        with pytest.raises(ValueError):
            SweepEngine().evaluate(point)


class TestModelKinds:
    def test_kind_matches_the_workload_registry(self):
        """Every registered model's sweep row carries its registry family tag
        (regression for the stale '"llm" or "dit"' doc: moe flows through)."""
        from repro.workloads.registry import MODEL_REGISTRY, get_model, model_kind

        engine = SweepEngine()
        for name in sorted(MODEL_REGISTRY):
            model = get_model(name)
            point = make_point("baseline", tpuv4i_baseline(), model, batch=1,
                               input_tokens=32, output_tokens=4, decode_kv_samples=1,
                               image_resolution=256, sampling_steps=1)
            assert engine.evaluate(point).kind == model_kind(model)

    def test_registry_families_are_exhaustive(self):
        from repro.workloads.registry import MODEL_KINDS, MODEL_REGISTRY, model_kind

        kinds = {model_kind(model) for model in MODEL_REGISTRY.values()}
        assert kinds == {"llm", "moe", "dit"}
        assert kinds <= {kind for _, kind in MODEL_KINDS}

    def test_unknown_model_type_rejected(self):
        from repro.workloads.registry import model_kind

        with pytest.raises(TypeError, match="no workload family"):
            model_kind(object())


class TestServingPoints:
    """Sweep points carrying a ServingSpec run the discrete-event simulator."""

    @staticmethod
    def serving_point(design="baseline", config=None, **overrides):
        from repro.serving.spec import ServingSpec

        spec = ServingSpec(scheduler=overrides.pop("scheduler", "fcfs"),
                           arrival_rate=overrides.pop("arrival_rate", 20.0),
                           num_requests=overrides.pop("num_requests", 20), seed=3)
        return make_point(design, config if config is not None else tpuv4i_baseline(),
                          TINY_LLM, batch=2, input_tokens=64, output_tokens=16,
                          decode_kv_samples=2, serving=spec, **overrides)

    def test_serving_row_shape(self):
        row = SweepEngine().evaluate(self.serving_point())
        assert row.scenario == "llm-serving"
        assert "fcfs" in row.settings_summary and "seed=3" in row.settings_summary
        assert row.item_unit == "token"
        assert row.items == 20 * 16  # every request completes
        assert row.latency_seconds > 0 and row.throughput > 0

    def test_serving_rows_cache_and_reproduce(self):
        engine = SweepEngine()
        points = [self.serving_point(), self.serving_point()]
        rows = engine.sweep(points)
        assert rows[0] == rows[1]
        assert engine.stats.point_hits >= 1
        assert SweepEngine().sweep([self.serving_point()])[0] == rows[0]

    def test_parallel_serving_sweep_matches_serial(self):
        points = [self.serving_point(),
                  self.serving_point(design="design-a", config=design_a()),
                  self.serving_point(scheduler="decode-priority")]
        serial = SweepEngine().sweep(points)
        parallel = SweepEngine().sweep(points, workers=2)
        assert to_json(parallel) == to_json(serial)

    def test_scheduler_changes_the_cache_key(self):
        assert (point_key(self.serving_point())
                != point_key(self.serving_point(scheduler="decode-priority")))

    def test_serving_grid_expansion(self):
        grid = SweepGrid(designs={"baseline": tpuv4i_baseline()},
                         models=["llama2-7b", "dit-xl-2"],
                         schedulers=("fcfs", "decode-priority"),
                         arrival_rates=(2.0, 8.0), serving_requests=10,
                         input_tokens=32, output_tokens=8)
        points = grid.points()
        # DiT is skipped under serving; 1 design x 1 model x 2 x 2 axes.
        assert len(points) == len(grid) == 4
        assert {p.serving.scheduler for p in points} == {"fcfs", "decode-priority"}
        assert {p.serving.arrival_rate for p in points} == {2.0, 8.0}

    def test_serving_grid_collapses_the_batch_axis(self):
        """Regression: batch does not affect a serving run, so extra batch
        values must not duplicate identical discrete-event simulations."""
        grid = SweepGrid(designs={"baseline": tpuv4i_baseline()},
                         models=["llama2-7b"], batches=(1, 8),
                         schedulers=("fcfs",), arrival_rates=(4.0,),
                         serving_requests=10, input_tokens=32, output_tokens=8)
        assert len(grid.points()) == len(grid) == 1

    def test_serving_grid_validation(self):
        with pytest.raises(ValueError, match="schedulers and arrival_rates"):
            SweepGrid(schedulers=("fcfs",))
        with pytest.raises(ValueError, match="deployment"):
            SweepGrid(schedulers=("fcfs",), arrival_rates=(2.0,),
                      device_counts=(1, 2))

    def test_serving_point_rejects_non_llm_and_devices(self):
        from repro.serving.spec import ServingSpec

        with pytest.raises(ValueError, match="LLM"):
            make_point("baseline", tpuv4i_baseline(), TINY_DIT, batch=1,
                       image_resolution=256, sampling_steps=1,
                       serving=ServingSpec())
        with pytest.raises(ValueError, match="deployment"):
            make_point("baseline", tpuv4i_baseline(), TINY_LLM, batch=1,
                       input_tokens=32, output_tokens=4, devices=2,
                       serving=ServingSpec())


class TestErrorPaths:
    def test_get_model_unknown_name_raises_keyerror(self):
        from repro.workloads.registry import get_model
        with pytest.raises(KeyError, match="registered models"):
            get_model("gpt-neo-x")

    def test_design_config_unknown_name_exits(self):
        from repro.cli import _design_config
        with pytest.raises(SystemExit, match="unknown design"):
            _design_config("gpu")

    def test_best_design_empty_candidates_raises(self):
        explorer = ArchitectureExplorer()
        with pytest.raises(ValueError, match="no exploration rows"):
            explorer.best_design([], "llm")
