"""Tests for mapspace enumeration and the scheduling model."""

import pytest

from repro.mapping.mapspace import MappingCandidate, PartitionDim, enumerate_candidates
from repro.mapping.schedule import (
    ScheduleOptions,
    overlapped_operator_latency,
    pipelined_tile_latency,
)
from repro.workloads.operators import LayerCategory, MatMulOp


def make_matmul(m, k, n, batch=1, name="mm"):
    return MatMulOp(name=name, category=LayerCategory.QKV_GEN, m=m, k=k, n=n, batch=batch)


class TestEnumerateCandidates:
    def test_large_gemm_offers_m_and_n_splits(self):
        candidates = enumerate_candidates(make_matmul(8192, 7168, 21504), mxu_count=4)
        dims = {c.partition for c in candidates}
        assert PartitionDim.M in dims
        assert PartitionDim.N in dims

    def test_batched_op_offers_batch_split(self):
        candidates = enumerate_candidates(make_matmul(1024, 72, 1024, batch=128), mxu_count=4)
        batch_candidates = [c for c in candidates if c.partition is PartitionDim.BATCH]
        assert len(batch_candidates) == 1
        assert batch_candidates[0].instances_per_mxu == 32

    def test_gemv_does_not_split_m(self):
        candidates = enumerate_candidates(make_matmul(1, 7168, 7168), mxu_count=4)
        assert all(c.partition is not PartitionDim.M for c in candidates)

    def test_k_split_only_for_k_dominant_shapes(self):
        gemv = enumerate_candidates(make_matmul(1, 16384, 128), mxu_count=4)
        assert any(c.partition is PartitionDim.K for c in gemv)
        square = enumerate_candidates(make_matmul(4096, 4096, 4096), mxu_count=4)
        assert all(c.partition is not PartitionDim.K for c in square)

    def test_k_split_flags_reduction(self):
        candidates = enumerate_candidates(make_matmul(1, 16384, 128), mxu_count=4)
        k_candidate = next(c for c in candidates if c.partition is PartitionDim.K)
        assert k_candidate.needs_reduction

    def test_shards_cover_problem(self):
        op = make_matmul(1000, 3000, 5000)
        for candidate in enumerate_candidates(op, mxu_count=4):
            if candidate.partition is PartitionDim.M:
                assert candidate.m * candidate.mxu_count >= op.m
            elif candidate.partition is PartitionDim.N:
                assert candidate.n * candidate.mxu_count >= op.n
            elif candidate.partition is PartitionDim.K:
                assert candidate.k * candidate.mxu_count >= op.k

    def test_tiny_op_gets_single_mxu_fallback(self):
        candidates = enumerate_candidates(make_matmul(1, 2, 2), mxu_count=4)
        assert len(candidates) >= 1
        assert candidates[-1].mxu_count >= 1

    def test_invalid_mxu_count(self):
        with pytest.raises(ValueError):
            enumerate_candidates(make_matmul(10, 10, 10), mxu_count=0)

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            MappingCandidate(partition=PartitionDim.M, mxu_count=0, instances_per_mxu=1,
                             m=1, k=1, n=1)


class TestScheduleOptions:
    def test_describe(self):
        assert "double-buffered" in ScheduleOptions().describe()
        assert "serialised" in ScheduleOptions(double_buffering=False).describe()


class TestPipelinedTileLatency:
    def test_double_buffered_steady_state(self):
        latency = pipelined_tile_latency(num_tiles=10, compute_per_tile=100,
                                         load_per_tile=40, store_per_tile=10)
        assert latency == 40 + 9 * 100 + 100 + 10

    def test_memory_bound_steady_state(self):
        latency = pipelined_tile_latency(num_tiles=10, compute_per_tile=20,
                                         load_per_tile=100)
        assert latency == 100 + 9 * 100 + 20 + 0

    def test_serialised(self):
        latency = pipelined_tile_latency(num_tiles=5, compute_per_tile=10, load_per_tile=10,
                                         store_per_tile=5, double_buffered=False)
        assert latency == 5 * 25

    def test_double_buffering_never_slower(self):
        for compute, load in [(10, 100), (100, 10), (50, 50)]:
            buffered = pipelined_tile_latency(8, compute, load)
            serial = pipelined_tile_latency(8, compute, load, double_buffered=False)
            assert buffered <= serial

    def test_validation(self):
        with pytest.raises(ValueError):
            pipelined_tile_latency(0, 1, 1)
        with pytest.raises(ValueError):
            pipelined_tile_latency(1, -1, 1)


class TestOverlappedOperatorLatency:
    def test_compute_bound(self):
        assert overlapped_operator_latency(100, 20, 30) == 100

    def test_memory_bound(self):
        assert overlapped_operator_latency(10, 80, 30) == 80

    def test_transfers_run_in_parallel_with_each_other(self):
        # Weight (HBM) and activation (OCI) streams use separate resources.
        assert overlapped_operator_latency(10, 80, 70) == 80

    def test_serialised(self):
        assert overlapped_operator_latency(100, 20, 30, double_buffered=False) == 130

    def test_validation(self):
        with pytest.raises(ValueError):
            overlapped_operator_latency(-1, 0, 0)
