"""Tests for the Fig. 1 CIM survey data and the Fig. 2d GPU profile."""

import pytest

from repro.data.cim_survey import (
    CIM_DESIGN_SURVEY,
    CIMDesignRecord,
    performance_evolution,
    performance_gap_to_accelerators,
)
from repro.data.gpu_profile import A100_PCIE_40GB, GPUDeviceModel, profile_model_breakdown
from repro.workloads.dit import DIT_XL_2
from repro.workloads.llm import LLAMA2_13B, LLMConfig


class TestCIMSurvey:
    def test_survey_contains_paper_data_points(self):
        names = {record.reference for record in CIM_DESIGN_SURVEY}
        assert {"[7]", "[8]", "[9]", "[10]", "[11]", "[4]", "[6]"} <= names

    def test_performance_values_match_fig1(self):
        by_ref = {r.reference: r for r in CIM_DESIGN_SURVEY}
        assert by_ref["[7]"].peak_tops == pytest.approx(0.0177)
        assert by_ref["[11]"].peak_tops == pytest.approx(52.4)
        assert by_ref["[4]"].peak_tops == pytest.approx(624.0)
        assert by_ref["[6]"].peak_tops == pytest.approx(275.0)

    def test_cim_performance_evolution_is_monotonic(self):
        # Fig. 1's storyline: CIM designs have improved steadily over time.
        series = performance_evolution(cim_only=True)
        years = [year for year, _ in series]
        tops = [tops for _, tops in series]
        assert years == sorted(years)
        assert tops == sorted(tops)

    def test_performance_gap_still_exists(self):
        # The paper notes a significant gap between CIM chips and GPUs/TPUs.
        assert performance_gap_to_accelerators() > 5.0

    def test_area_efficiency_positive(self):
        for record in CIM_DESIGN_SURVEY:
            assert record.tops_per_mm2 > 0

    def test_record_validation(self):
        with pytest.raises(ValueError):
            CIMDesignRecord(name="bad", venue="x", year=2020, peak_tops=-1, area_mm2=1,
                            technology_nm=7, supports_floating_point=False, is_cim=True,
                            reference="[x]")
        with pytest.raises(ValueError):
            CIMDesignRecord(name="bad", venue="x", year=1990, peak_tops=1, area_mm2=1,
                            technology_nm=7, supports_floating_point=False, is_cim=True,
                            reference="[x]")


class TestGPUProfile:
    def test_a100_spec(self):
        assert A100_PCIE_40GB.peak_tops == 312.0
        assert A100_PCIE_40GB.memory_bandwidth_gbps == 1555.0

    def test_llama2_breakdown_dominated_by_transformer_layers(self):
        breakdown = profile_model_breakdown(LLAMA2_13B, batch=1, seq_len=512)
        # Fig. 2d: Transformer layers account for 98.35 % of Llama2-13B latency.
        assert breakdown["core_layers_fraction"] > 0.95
        assert breakdown["pre_process_fraction"] < 0.03
        assert breakdown["post_process_fraction"] < 0.03

    def test_dit_breakdown_dominated_by_blocks(self):
        breakdown = profile_model_breakdown(DIT_XL_2, batch=1, image_resolution=512)
        # Fig. 2d: DiT blocks account for 99.31 % of DiT-XL/2 latency.
        assert breakdown["core_layers_fraction"] > 0.95

    def test_fractions_sum_to_one(self):
        breakdown = profile_model_breakdown(LLAMA2_13B, batch=1, seq_len=256)
        total = (breakdown["pre_process_fraction"] + breakdown["core_layers_fraction"]
                 + breakdown["post_process_fraction"])
        assert total == pytest.approx(1.0)

    def test_custom_device(self):
        small_gpu = GPUDeviceModel(name="small", peak_tops=10.0, memory_bandwidth_gbps=100.0)
        tiny = LLMConfig(name="profile-tiny", num_layers=4, num_heads=8, d_model=512, d_ff=2048)
        breakdown = profile_model_breakdown(tiny, device=small_gpu, batch=1, seq_len=64)
        assert breakdown["total"] > 0

    def test_device_validation(self):
        with pytest.raises(ValueError):
            GPUDeviceModel(name="bad", peak_tops=0, memory_bandwidth_gbps=1)
