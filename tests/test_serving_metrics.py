"""Tests for serving metrics: percentiles, SLO goodput and export hooks."""

import csv
import io
import json

import pytest

from repro.core.designs import tpuv4i_baseline
from repro.serving.metrics import (
    SLO,
    LatencySummary,
    RequestMetrics,
    percentile,
)
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import generate_trace
from repro.sweep.export import to_csv, to_json, write_csv
from repro.workloads.chat import RequestClass
from repro.workloads.llm import LLMConfig

TINY = LLMConfig(name="metrics-tiny-llm", num_layers=2, num_heads=8, d_model=512,
                 d_ff=2048, vocab_size=1000)
MIX = (RequestClass(input_tokens=64, output_tokens=16),)


class TestPercentile:
    def test_median_of_odd_count(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_interpolates_between_order_statistics(self):
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_single_value(self):
        assert percentile([4.2], 99.0) == 4.2

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 150.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_two_element_endpoints_are_exact(self):
        # q=0 / q=100 on two elements must return the elements themselves,
        # with no interpolation drift.
        assert percentile([7.0, 3.0], 0.0) == 3.0
        assert percentile([7.0, 3.0], 100.0) == 7.0

    def test_two_element_interpolation_spans_the_gap(self):
        values = [10.0, 20.0]
        assert percentile(values, 50.0) == pytest.approx(15.0)
        assert percentile(values, 10.0) == pytest.approx(11.0)
        assert percentile(values, 99.0) == pytest.approx(19.9)

    def test_endpoints_never_leave_the_value_range(self):
        values = [0.25, 0.5, 0.75, 1.0]
        for q in (0.0, 1e-9, 50.0, 100.0 - 1e-9, 100.0):
            assert min(values) <= percentile(values, q) <= max(values)


class TestSLO:
    def test_meets_requires_both_targets(self):
        metrics = RequestMetrics.from_times(request_id=0, arrival_s=0.0,
                                            input_tokens=8, output_tokens=5,
                                            first_token_s=0.5, finish_s=0.9)
        assert metrics.meets(SLO(ttft_s=1.0, tpot_s=0.2))
        assert not metrics.meets(SLO(ttft_s=0.4, tpot_s=0.2))
        assert not metrics.meets(SLO(ttft_s=1.0, tpot_s=0.05))

    def test_exact_tie_at_both_targets_counts_as_met(self):
        # Goodput ties: a request landing exactly ON the SLO targets meets
        # the SLO (the comparison is <=, not <) and therefore counts toward
        # goodput; an epsilon over either target does not.
        slo = SLO(ttft_s=0.5, tpot_s=0.1)
        tie = RequestMetrics.from_times(request_id=0, arrival_s=0.0,
                                        input_tokens=8, output_tokens=5,
                                        first_token_s=0.5,
                                        finish_s=0.5 + 4 * 0.1)
        assert tie.ttft_s == slo.ttft_s
        assert tie.tpot_s == pytest.approx(slo.tpot_s)
        assert tie.meets(slo)
        over_ttft = RequestMetrics.from_times(request_id=1, arrival_s=0.0,
                                              input_tokens=8, output_tokens=5,
                                              first_token_s=0.5 + 1e-9,
                                              finish_s=0.9)
        assert not over_ttft.meets(slo)
        over_tpot = RequestMetrics.from_times(request_id=2, arrival_s=0.0,
                                              input_tokens=8, output_tokens=5,
                                              first_token_s=0.5,
                                              finish_s=0.5 + 4 * 0.1 + 1e-6)
        assert not over_tpot.meets(slo)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(ttft_s=0.0)


class TestRequestMetrics:
    def test_derived_quantities(self):
        metrics = RequestMetrics.from_times(request_id=3, arrival_s=1.0,
                                            input_tokens=8, output_tokens=5,
                                            first_token_s=1.5, finish_s=2.5)
        assert metrics.ttft_s == pytest.approx(0.5)
        assert metrics.tpot_s == pytest.approx(1.0 / 4)
        assert metrics.e2e_s == pytest.approx(1.5)

    def test_single_token_request_has_zero_tpot(self):
        metrics = RequestMetrics.from_times(request_id=0, arrival_s=0.0,
                                            input_tokens=8, output_tokens=1,
                                            first_token_s=0.2, finish_s=0.2)
        assert metrics.tpot_s == 0.0

    def test_rejects_disordered_timeline(self):
        with pytest.raises(ValueError, match="ordered"):
            RequestMetrics.from_times(request_id=0, arrival_s=1.0, input_tokens=8,
                                      output_tokens=2, first_token_s=0.5, finish_s=2.0)


class TestLatencySummary:
    def test_from_values(self):
        summary = LatencySummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean_s == pytest.approx(2.5)
        assert summary.p50_s == pytest.approx(2.5)
        assert summary.max_s == 4.0
        assert summary.p95_s <= summary.p99_s <= summary.max_s

    def test_empty(self):
        assert LatencySummary.empty().p99_s == 0.0


@pytest.fixture(scope="module")
def report():
    trace = generate_trace("poisson", MIX, 20.0, 40, seed=5)
    return ServingSimulator(TINY, tpuv4i_baseline()).run(
        trace, slo=SLO(ttft_s=0.5, tpot_s=0.05))


class TestReport:
    def test_goodput_consistent_with_attainment(self, report):
        met = [m for m in report.requests if m.meets(report.slo)]
        assert report.slo_attainment == pytest.approx(len(met) / report.completed)
        assert report.goodput_requests_per_second == pytest.approx(
            len(met) / report.makespan_s)
        assert report.goodput_tokens_per_second <= report.tokens_per_second

    def test_summaries_match_per_request_rows(self, report):
        assert report.ttft.max_s == max(m.ttft_s for m in report.requests)
        assert report.e2e.p50_s == percentile([m.e2e_s for m in report.requests], 50.0)

    def test_to_dict_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["completed"] == report.completed
        assert payload["ttft"]["p99_s"] == report.ttft.p99_s
        assert payload["cost_cache_hit_rate"] == report.cost_cache_hit_rate
        assert len(payload["requests"]) == report.completed

    def test_to_dict_can_drop_requests(self, report):
        assert "requests" not in report.to_dict(include_requests=False)


class TestExportIntegration:
    def test_request_rows_export_to_csv(self, report):
        parsed = list(csv.DictReader(io.StringIO(to_csv(report.requests))))
        assert len(parsed) == report.completed
        assert set(parsed[0]) == {"request_id", "arrival_s", "input_tokens",
                                  "output_tokens", "first_token_s", "finish_s",
                                  "ttft_s", "tpot_s", "e2e_s", "disrupted"}

    def test_request_rows_export_to_json(self, report):
        decoded = json.loads(to_json(report.requests))
        assert decoded[0]["ttft_s"] == report.requests[0].ttft_s

    def test_write_csv_deterministic(self, report, tmp_path):
        first = write_csv(report.requests, tmp_path / "a.csv").read_text()
        second = write_csv(report.requests, tmp_path / "b.csv").read_text()
        assert first == second

    def test_unexportable_rows_rejected(self):
        with pytest.raises(TypeError, match="cannot export"):
            to_json([object()])

    def test_empty_request_rows_keep_their_header(self):
        """Regression: an all-rejected run must still export the
        RequestMetrics header, not the sweep-row one."""
        from repro.sweep.export import fieldnames_of

        header = to_csv((), fieldnames=fieldnames_of(RequestMetrics)).strip()
        assert header.startswith("request_id,arrival_s,")
        assert header.endswith(",e2e_s,disrupted")
