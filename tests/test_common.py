"""Tests for shared primitives in repro.common."""

import math

import pytest

from repro.common import (
    Precision,
    ceil_div,
    clamp,
    cycles_to_seconds,
    geometric_mean,
    seconds_to_cycles,
)


class TestPrecision:
    def test_int8_bits_and_bytes(self):
        assert Precision.INT8.bits == 8
        assert Precision.INT8.bytes == 1

    def test_bf16_bits_and_bytes(self):
        assert Precision.BF16.bits == 16
        assert Precision.BF16.bytes == 2

    def test_mantissa_bits_loaded_into_cim(self):
        # BF16 has an 8-bit mantissa (with implicit one) in the paper's design.
        assert Precision.INT8.mantissa_bits == 8
        assert Precision.BF16.mantissa_bits == 8

    def test_accumulator_width(self):
        assert Precision.INT8.accumulator_bytes == 4
        assert Precision.BF16.accumulator_bytes == 4


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(128, 64) == 2

    def test_rounds_up(self):
        assert ceil_div(129, 64) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 8) == 0

    def test_one(self):
        assert ceil_div(1, 128) == 1

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 4)


class TestClamp:
    def test_within_range(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below_range(self):
        assert clamp(-2.0, 0.0, 1.0) == 0.0

    def test_above_range(self):
        assert clamp(7.0, 0.0, 1.0) == 1.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestCycleConversions:
    def test_round_trip(self):
        cycles = 12345.0
        seconds = cycles_to_seconds(cycles, 1.05)
        assert seconds_to_cycles(seconds, 1.05) == pytest.approx(cycles)

    def test_one_ghz(self):
        assert cycles_to_seconds(1e9, 1.0) == pytest.approx(1.0)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(1.0, 0.0)
        with pytest.raises(ValueError):
            seconds_to_cycles(1.0, -1.0)


class TestGeometricMean:
    def test_identical_values(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_matches_math_definition(self):
        values = [1.5, 2.5, 3.5]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
