"""Tests for the area model."""

import pytest

from repro.hw.area import AreaModel
from repro.hw.technology import get_node


class TestAreaModel:
    def setup_method(self):
        self.model = AreaModel()

    def test_digital_mxu_area_matches_calibration(self):
        # 34.4 TOPS / 0.648 TOPS/mm² ≈ 53 mm² at 22 nm.
        area = self.model.digital_mxu_area()
        peak = 2 * 16384 * 1.05e9 / 1e12
        assert area == pytest.approx(peak / 0.648, rel=1e-6)

    def test_digital_area_scales_with_macs(self):
        half = self.model.digital_mxu_area(rows=128, cols=64)
        full = self.model.digital_mxu_area()
        assert half == pytest.approx(full / 2)

    def test_cim_mxu_area_is_roughly_half_of_digital(self):
        # The paper states the CIM-MXU reaches the same peak at ~50 % area.
        ratio = self.model.cim_area_saving_vs_digital()
        assert 0.4 < ratio < 0.6

    def test_cim_core_area_times_grid_equals_mxu_area(self):
        core = self.model.cim_core_area()
        assert self.model.cim_mxu_area(16, 8) == pytest.approx(core * 128)

    def test_cim_mxu_area_scales_with_grid(self):
        small = self.model.cim_mxu_area(8, 8)
        large = self.model.cim_mxu_area(16, 16)
        assert large == pytest.approx(4 * small)

    def test_sram_area_positive_and_linear(self):
        one_mb = self.model.sram_area(2**20)
        two_mb = self.model.sram_area(2 * 2**20)
        assert one_mb > 0
        assert two_mb == pytest.approx(2 * one_mb)

    def test_sram_area_zero_bytes(self):
        assert self.model.sram_area(0) == 0.0

    def test_technology_scaling_shrinks_area(self):
        advanced = AreaModel(technology=get_node("tsmc7"))
        assert advanced.digital_mxu_area() < self.model.digital_mxu_area()
        assert advanced.cim_core_area() < self.model.cim_core_area()

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            self.model.digital_mxu_area(rows=0)
        with pytest.raises(ValueError):
            self.model.cim_mxu_area(grid_rows=-1)
        with pytest.raises(ValueError):
            self.model.sram_area(-5)
