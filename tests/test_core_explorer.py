"""Tests for the architecture design-space explorer (Table IV / Fig. 7)."""

import pytest

from repro.core.explorer import (
    ArchitectureExplorer,
    DesignPoint,
    ExplorationRow,
    TABLE_IV_DESIGN_POINTS,
)
from repro.core.simulator import DiTInferenceSettings, LLMInferenceSettings
from repro.workloads.dit import DiTConfig
from repro.workloads.llm import LLMConfig


class TestDesignPoints:
    def test_table_iv_has_nine_points(self):
        assert len(TABLE_IV_DESIGN_POINTS) == 9

    def test_table_iv_covers_paper_choices(self):
        dims = {(p.grid_rows, p.grid_cols) for p in TABLE_IV_DESIGN_POINTS}
        counts = {p.mxu_count for p in TABLE_IV_DESIGN_POINTS}
        assert dims == {(8, 8), (16, 8), (16, 16)}
        assert counts == {2, 4, 8}

    def test_label_and_config(self):
        point = DesignPoint(mxu_count=4, grid_rows=8, grid_cols=8)
        assert point.label == "4 x 8x8"
        config = point.to_config()
        assert config.mxu_count == 4
        assert config.cim_grid_rows == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(mxu_count=0, grid_rows=8, grid_cols=8)


@pytest.fixture(scope="module")
def small_exploration():
    """A reduced exploration (tiny workloads, two design points) for speed."""
    llm = LLMConfig(name="tiny-explore-llm", num_layers=2, num_heads=8, d_model=1024, d_ff=4096)
    dit = DiTConfig(name="tiny-explore-dit", depth=2, num_heads=8, d_model=512)
    explorer = ArchitectureExplorer(
        llm=llm, dit=dit,
        llm_settings=LLMInferenceSettings(batch=2, input_tokens=128, output_tokens=32,
                                          decode_kv_samples=2),
        dit_settings=DiTInferenceSettings(batch=1, image_resolution=256, sampling_steps=2),
        design_points=[DesignPoint(4, 16, 8), DesignPoint(2, 8, 8)])
    return explorer.explore()


class TestExploration:
    def test_rows_cover_baseline_and_points(self, small_exploration):
        designs = {row.design for row in small_exploration}
        assert "baseline" in designs
        assert "4 x 16x8" in designs and "2 x 8x8" in designs
        workloads = {row.workload for row in small_exploration}
        assert workloads == {"llm", "dit"}

    def test_baseline_rows_are_unity(self, small_exploration):
        for row in small_exploration:
            if row.design == "baseline":
                assert row.latency_vs_baseline == 1.0
                assert row.energy_saving_vs_baseline == 1.0

    def test_cim_rows_save_mxu_energy(self, small_exploration):
        for row in small_exploration:
            if row.design != "baseline":
                assert row.energy_saving_vs_baseline > 1.0

    def test_smaller_design_saves_more_energy(self, small_exploration):
        def energy(design, workload):
            return next(r.energy_saving_vs_baseline for r in small_exploration
                        if r.design == design and r.workload == workload)
        assert energy("2 x 8x8", "llm") > energy("4 x 16x8", "llm") * 0.9

    def test_latency_change_percent(self):
        row = ExplorationRow(design="x", workload="llm", peak_tops=1.0, latency_seconds=1.0,
                             mxu_energy_joules=1.0, latency_vs_baseline=1.38,
                             energy_saving_vs_baseline=27.3)
        assert row.latency_change_percent == pytest.approx(38.0)

    def test_best_design_respects_latency_window(self, small_exploration):
        explorer = ArchitectureExplorer()
        best = explorer.best_design(small_exploration, "llm", max_latency_increase=10.0)
        assert best.design != "baseline"

    def test_best_design_unknown_workload_raises(self, small_exploration):
        explorer = ArchitectureExplorer()
        with pytest.raises(ValueError):
            explorer.best_design(small_exploration, "vision")
