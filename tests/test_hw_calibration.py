"""Tests for the silicon calibration constants and the TPUv4i specification."""

import pytest

from repro.hw.calibration import CalibrationConstants, PAPER_CALIBRATION, TPUSpec, TPUV4I_SPEC


class TestCalibrationConstants:
    def test_paper_energy_efficiency_gain(self):
        # Table II: 7.26 / 0.77 = 9.43×.
        assert PAPER_CALIBRATION.cim_energy_efficiency_gain == pytest.approx(9.43, rel=0.01)

    def test_paper_area_efficiency_gain(self):
        # Table II: 1.31 / 0.648 = 2.02×.
        assert PAPER_CALIBRATION.cim_area_efficiency_gain == pytest.approx(2.02, rel=0.01)

    def test_leakage_fractions_in_range(self):
        assert 0.0 <= PAPER_CALIBRATION.digital_leakage_fraction < 1.0
        assert 0.0 <= PAPER_CALIBRATION.cim_leakage_fraction < 1.0

    def test_rejects_negative_efficiency(self):
        with pytest.raises(ValueError):
            CalibrationConstants(digital_tops_per_watt=-1.0)

    def test_rejects_leakage_fraction_of_one(self):
        with pytest.raises(ValueError):
            CalibrationConstants(digital_leakage_fraction=1.0)

    def test_bf16_overhead_above_one(self):
        assert PAPER_CALIBRATION.bf16_energy_overhead >= 1.0


class TestTPUSpec:
    def test_table1_parameters(self):
        spec = TPUV4I_SPEC
        assert spec.mxu_count == 4
        assert spec.systolic_rows == 128 and spec.systolic_cols == 128
        assert spec.cim_grid_rows == 16 and spec.cim_grid_cols == 8
        assert spec.cim_core_rows == 128 and spec.cim_core_cols == 256
        assert spec.vmem_bytes == 16 * 2**20
        assert spec.cmem_bytes == 128 * 2**20
        assert spec.main_memory_bytes == 8 * 2**30
        assert spec.main_memory_bandwidth_gbps == 614.0
        assert spec.ici_link_bandwidth_gbps == 100.0

    def test_macs_per_cycle_match_between_mxu_flavours(self):
        # Table II: both MXUs deliver 16384 MACs per cycle.
        assert TPUV4I_SPEC.systolic_macs_per_cycle == 16384
        assert TPUV4I_SPEC.cim_macs_per_cycle == 16384

    def test_bandwidth_per_cycle(self):
        bytes_per_cycle = TPUV4I_SPEC.main_memory_bytes_per_cycle
        assert bytes_per_cycle == pytest.approx(614e9 / 1.05e9, rel=1e-6)

    def test_ici_bytes_per_cycle(self):
        assert TPUV4I_SPEC.ici_bytes_per_cycle == pytest.approx(100e9 / 1.05e9, rel=1e-6)

    def test_rejects_non_positive_fields(self):
        with pytest.raises(ValueError):
            TPUSpec(frequency_ghz=0.0)
        with pytest.raises(ValueError):
            TPUSpec(mxu_count=-4)

    def test_peak_tops_close_to_published_tpuv4i(self):
        # TPUv4i: 138 TFLOPS BF16 at 1.05 GHz with 4 MXUs of 16384 MACs.
        tops = 2 * TPUV4I_SPEC.mxu_count * TPUV4I_SPEC.systolic_macs_per_cycle \
            * TPUV4I_SPEC.frequency_ghz * 1e9 / 1e12
        assert tops == pytest.approx(137.6, rel=0.01)
