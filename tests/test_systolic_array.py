"""Tests for the DigitalMXU component model."""

import pytest

from repro.common import Precision
from repro.systolic.systolic_array import DigitalMXU, SystolicArrayConfig


@pytest.fixture(scope="module")
def mxu():
    return DigitalMXU()


class TestConfig:
    def test_defaults_match_tpuv4i(self):
        config = SystolicArrayConfig()
        assert config.rows == 128 and config.cols == 128
        assert config.macs_per_cycle == 16384

    def test_peak_tops(self):
        config = SystolicArrayConfig()
        assert config.peak_tops == pytest.approx(34.4, rel=0.01)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            SystolicArrayConfig(rows=0)
        with pytest.raises(ValueError):
            SystolicArrayConfig(frequency_ghz=-1)


class TestGemm:
    def test_table2_energy_efficiency(self, mxu):
        # Table II: the digital MXU sustains 0.77 TOPS/W at INT8.
        assert mxu.energy_efficiency_tops_per_watt() == pytest.approx(0.77, rel=0.01)

    def test_table2_area_efficiency(self, mxu):
        # Table II: 0.648 TOPS/mm².
        assert mxu.area_efficiency_tops_per_mm2() == pytest.approx(0.648, rel=0.01)

    def test_result_fields_consistent(self, mxu):
        result = mxu.gemm(256, 512, 512)
        assert result.macs == 256 * 512 * 512
        assert result.cycles > 0
        assert 0 < result.utilization <= 1
        assert result.energy.component_total("mxu") > 0
        assert result.weight_bytes == 512 * 512
        assert result.input_bytes == 256 * 512
        assert result.output_bytes == 256 * 512 * 4

    def test_stationary_weights_faster_than_dynamic(self, mxu):
        stationary = mxu.gemm(8, 2048, 2048, stationary_weights=True)
        dynamic = mxu.gemm(8, 2048, 2048, stationary_weights=False)
        assert stationary.cycles < dynamic.cycles

    def test_bf16_same_cycles_more_energy(self, mxu):
        int8 = mxu.gemm(128, 1024, 1024, Precision.INT8)
        bf16 = mxu.gemm(128, 1024, 1024, Precision.BF16)
        assert bf16.cycles == int8.cycles
        assert bf16.energy.total > int8.energy.total

    def test_instances_scale_cycles_linearly(self, mxu):
        one = mxu.gemm(64, 128, 1024, stationary_weights=False, instances=1)
        four = mxu.gemm(64, 128, 1024, stationary_weights=False, instances=4)
        assert four.cycles == 4 * one.cycles
        assert four.macs == 4 * one.macs

    def test_instances_must_be_positive(self, mxu):
        with pytest.raises(ValueError):
            mxu.gemm(64, 128, 128, instances=0)

    def test_idle_energy_is_leakage_only(self, mxu):
        idle = mxu.idle_energy(1000.0)
        assert idle.total_dynamic == 0.0
        assert idle.total_leakage > 0.0

    def test_idle_energy_rejects_negative(self, mxu):
        with pytest.raises(ValueError):
            mxu.idle_energy(-1.0)

    def test_leakage_power_scales_with_array_size(self):
        small = DigitalMXU(config=SystolicArrayConfig(rows=64, cols=64))
        large = DigitalMXU(config=SystolicArrayConfig(rows=128, cols=128))
        assert large.leakage_power_w == pytest.approx(4 * small.leakage_power_w)
