"""Tests for the inference simulator."""

import pytest

from repro.core.simulator import DiTInferenceSettings, InferenceSimulator, LLMInferenceSettings
from repro.workloads.operators import LayerCategory


class TestSettings:
    def test_paper_defaults(self):
        settings = LLMInferenceSettings()
        assert settings.batch == 8
        assert settings.input_tokens == 1024
        assert settings.output_tokens == 512

    def test_decode_kv_lengths_span_decode_phase(self):
        settings = LLMInferenceSettings(input_tokens=1000, output_tokens=100, decode_kv_samples=4)
        lengths = settings.decode_kv_lengths()
        assert len(lengths) == 4
        assert all(1000 < kv <= 1100 for kv in lengths)
        assert lengths == sorted(lengths)

    def test_single_sample_uses_midpoint(self):
        settings = LLMInferenceSettings(input_tokens=1000, output_tokens=100, decode_kv_samples=1)
        assert settings.decode_kv_lengths() == [1050]

    def test_dit_defaults(self):
        settings = DiTInferenceSettings()
        assert settings.batch == 8
        assert settings.image_resolution == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            LLMInferenceSettings(batch=0)
        with pytest.raises(ValueError):
            LLMInferenceSettings(decode_kv_samples=0)
        with pytest.raises(ValueError):
            DiTInferenceSettings(sampling_steps=0)


class TestLLMSimulation:
    def test_prefill_layer_result(self, cim_simulator, tiny_llm, tiny_llm_settings):
        result = cim_simulator.simulate_llm_prefill_layer(tiny_llm, tiny_llm_settings)
        assert result.total_seconds > 0
        assert LayerCategory.QKV_GEN in result.latency_by_category()

    def test_decode_layer_uses_256th_token_by_default(self, cim_simulator, tiny_llm,
                                                      tiny_llm_settings):
        default = cim_simulator.simulate_llm_decode_layer(tiny_llm, tiny_llm_settings)
        explicit = cim_simulator.simulate_llm_decode_layer(
            tiny_llm, tiny_llm_settings, kv_len=tiny_llm_settings.input_tokens + 256)
        assert default.total_seconds == pytest.approx(explicit.total_seconds)

    def test_decode_layer_latency_grows_with_kv(self, cim_simulator, tiny_llm, tiny_llm_settings):
        short = cim_simulator.simulate_llm_decode_layer(tiny_llm, tiny_llm_settings, kv_len=64)
        long = cim_simulator.simulate_llm_decode_layer(tiny_llm, tiny_llm_settings, kv_len=4096)
        assert long.total_seconds > short.total_seconds

    def test_end_to_end_inference_structure(self, cim_simulator, tiny_llm, tiny_llm_settings):
        result = cim_simulator.simulate_llm_inference(tiny_llm, tiny_llm_settings)
        stage_names = [stage.name for stage in result.stages]
        assert stage_names[0] == "prefill"
        assert len(stage_names) == 1 + tiny_llm_settings.decode_kv_samples
        assert result.items == tiny_llm_settings.batch * tiny_llm_settings.output_tokens
        assert result.throughput > 0

    def test_prefill_repeats_per_layer(self, cim_simulator, tiny_llm, tiny_llm_settings):
        result = cim_simulator.simulate_llm_inference(tiny_llm, tiny_llm_settings)
        assert result.stage("prefill").repeat == tiny_llm.num_layers

    def test_decode_dominates_for_long_outputs(self, cim_simulator, tiny_llm):
        settings = LLMInferenceSettings(batch=2, input_tokens=64, output_tokens=256,
                                        decode_kv_samples=2)
        result = cim_simulator.simulate_llm_inference(tiny_llm, settings)
        decode_seconds = sum(s.seconds for s in result.stages if s.name.startswith("decode"))
        assert decode_seconds > result.stage("prefill").seconds


class TestDiTSimulation:
    def test_block_result(self, cim_simulator, tiny_dit, tiny_dit_settings):
        result = cim_simulator.simulate_dit_block(tiny_dit, tiny_dit_settings)
        assert result.total_seconds > 0
        assert LayerCategory.CONDITIONING in result.latency_by_category()

    def test_end_to_end_scales_with_steps_and_depth(self, cim_simulator, tiny_dit,
                                                    tiny_dit_settings):
        result = cim_simulator.simulate_dit_inference(tiny_dit, tiny_dit_settings)
        block = cim_simulator.simulate_dit_block(tiny_dit, tiny_dit_settings)
        expected = block.total_seconds * tiny_dit.depth * tiny_dit_settings.sampling_steps
        assert result.total_seconds == pytest.approx(expected)

    def test_items_are_images(self, cim_simulator, tiny_dit, tiny_dit_settings):
        result = cim_simulator.simulate_dit_inference(tiny_dit, tiny_dit_settings)
        assert result.item_unit == "image"
        assert result.items == tiny_dit_settings.batch

    def test_default_settings_used_when_omitted(self, tiny_dit):
        simulator = InferenceSimulator.__new__(InferenceSimulator)  # avoid heavy init twice
        # Construct properly instead: default settings path exercised below.
        from repro.core.designs import cim_tpu_default
        simulator = InferenceSimulator(cim_tpu_default())
        result = simulator.simulate_dit_inference(tiny_dit)
        assert result.total_seconds > 0
