"""Tests for the routing policies and the router registry."""

import pytest

from repro.serving.router import (
    ROUTER_REGISTRY,
    ReplicaView,
    RouterContext,
    RouterPolicy,
    get_router,
    register_router,
)
from repro.serving.trace import Request


def view(index, outstanding=0, tokens=0, budget=10**9, kv_bytes=1000):
    return ReplicaView(index=index, tpu_name="tpu", devices=1, max_batch=32,
                       outstanding_requests=outstanding,
                       outstanding_tokens=tokens,
                       service_tokens_per_s=100.0,
                       kv_budget_bytes=budget, kv_bytes_per_token=kv_bytes)


def context(routed=0, now=0.0, fleet=4):
    return RouterContext(now_s=now, routed_count=routed, fleet_size=fleet)


def request(request_id=0, session_id=None):
    return Request(request_id=request_id, arrival_s=0.0, input_tokens=64,
                   output_tokens=16, session_id=session_id)


class TestRegistry:
    def test_builtin_policies_registered(self):
        for name in ("round-robin", "least-outstanding-requests",
                     "least-kv-pressure", "session-affinity"):
            assert get_router(name).name == name

    def test_unknown_router_lists_registered(self):
        with pytest.raises(KeyError, match="round-robin"):
            get_router("weighted-random")

    def test_unknown_router_error_names_every_choice(self):
        with pytest.raises(KeyError) as excinfo:
            get_router("nope")
        message = str(excinfo.value)
        for name in ROUTER_REGISTRY:
            assert name in message

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_router(ROUTER_REGISTRY["round-robin"])

    def test_register_overwrite(self):
        original = ROUTER_REGISTRY["round-robin"]
        register_router(original, overwrite=True)
        assert ROUTER_REGISTRY["round-robin"] is original


class TestReplicaView:
    def test_kv_pressure(self):
        v = view(0, tokens=500, budget=1_000_000, kv_bytes=1000)
        assert v.kv_pressure == pytest.approx(0.5)

    def test_kv_pressure_with_zero_budget_is_infinite(self):
        assert view(0, budget=0).kv_pressure == float("inf")

    def test_fits(self):
        v = view(0, budget=100_000, kv_bytes=1000)  # 100 tokens fit
        assert v.fits(request())  # 64+16 = 80 tokens
        assert not v.fits(Request(request_id=1, arrival_s=0.0,
                                  input_tokens=128, output_tokens=16))


class TestBuiltinPolicies:
    def test_round_robin_cycles(self):
        policy = get_router("round-robin")
        candidates = (view(0), view(1), view(2))
        picks = [policy.choose(request(i), candidates, context(routed=i)).index
                 for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_prefers_emptiest(self):
        policy = get_router("least-outstanding-requests")
        candidates = (view(0, outstanding=3), view(1, outstanding=1),
                      view(2, outstanding=2))
        assert policy.choose(request(), candidates, context()).index == 1

    def test_least_outstanding_ties_break_by_index(self):
        policy = get_router("least-outstanding-requests")
        candidates = (view(2, outstanding=1), view(1, outstanding=1))
        assert policy.choose(request(), candidates, context()).index == 1

    def test_least_kv_pressure_prefers_lowest_fraction(self):
        policy = get_router("least-kv-pressure")
        # Replica 0 holds fewer tokens but has a much smaller budget.
        candidates = (view(0, tokens=100, budget=200_000),
                      view(1, tokens=400, budget=4_000_000))
        assert policy.choose(request(), candidates, context()).index == 1

    def test_session_affinity_is_sticky(self):
        policy = get_router("session-affinity")
        candidates = (view(0), view(1), view(2), view(3))
        picks = {policy.choose(request(i, session_id=42), candidates,
                               context(routed=i)).index
                 for i in range(10)}
        assert len(picks) == 1  # every request of the session lands together

    def test_session_affinity_spreads_sessions(self):
        policy = get_router("session-affinity")
        candidates = tuple(view(i) for i in range(4))
        picks = {policy.choose(request(i, session_id=i), candidates,
                               context()).index
                 for i in range(32)}
        assert len(picks) > 1  # distinct sessions do not all pile up

    def test_session_affinity_rendezvous_stability(self):
        """Removing a replica only moves sessions that lived on it."""
        policy = get_router("session-affinity")
        full = tuple(view(i) for i in range(4))
        shrunk = tuple(view(i) for i in range(3))  # replica 3 drained
        for session in range(24):
            before = policy.choose(request(0, session_id=session), full,
                                   context()).index
            after = policy.choose(request(0, session_id=session), shrunk,
                                  context()).index
            if before != 3:
                assert after == before

    def test_session_affinity_falls_back_to_request_id(self):
        policy = get_router("session-affinity")
        candidates = tuple(view(i) for i in range(4))
        a = policy.choose(request(7), candidates, context()).index
        b = policy.choose(request(7), candidates, context(routed=99)).index
        assert a == b  # request id is the key, not the routing count


class TestCustomPolicy:
    def test_custom_router_round_trip(self):
        """A user-registered policy drives a cluster without touching core."""
        from repro.core.designs import tpuv4i_baseline
        from repro.serving.cluster import ClusterSimulator
        from repro.serving.simulator import ServingSimulator
        from repro.serving.trace import generate_trace
        from repro.workloads.chat import RequestClass
        from repro.workloads.llm import LLMConfig

        policy = RouterPolicy(
            name="test-always-last",
            description="adversarial: dump everything on the last replica",
            choose=lambda request, candidates, context: candidates[-1])
        register_router(policy)
        try:
            model = LLMConfig(name="router-test-llm", num_layers=2, num_heads=8,
                              d_model=1024, d_ff=4096, vocab_size=32000)
            trace = generate_trace(
                "poisson", (RequestClass(input_tokens=64, output_tokens=8),),
                20.0, 30, 5)
            replicas = [ServingSimulator(model, tpuv4i_baseline())
                        for _ in range(3)]
            report = ClusterSimulator(replicas,
                                      router="test-always-last").run(trace)
            assert report.router == "test-always-last"
            assert report.replicas[2].requests_routed == 30
            assert report.replicas[0].requests_routed == 0
            assert report.completed == 30
        finally:
            del ROUTER_REGISTRY["test-always-last"]
