"""Golden error bounds for the closed-form fluid serving estimator.

:func:`repro.serving.fluid.estimate_serving` trades the event loop for a
class-level flow model; these tests pin *how far* it is allowed to drift
from the exact discrete-event engine, per registered LLM scenario and per
load band.  The bounds are measured errors plus headroom — they document
the estimator's current accuracy, and tightening the model must never
loosen them.

Reading the table: throughput, makespan and energy are the strong axes
(within ~15 % everywhere probed).  TTFT is the weak axis near the
capacity knee — single-class mixes at ``rho ~ 1`` sit exactly where flow
models are categorically worst (the heavy-traffic regime where queueing
is all variance, which a deterministic flow cannot see), and the
``llm-serving @ 0.04`` cell carries a deliberately vacuous attainment
bound to record that known weakness honestly rather than hide the cell.

Changing the fluid model changes these errors AND every fluid
fingerprint: bump ``cluster-report`` / ``sweep-point`` versions when you
touch it (see CONTRIBUTING.md).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import Precision
from repro.core.designs import design_a
from repro.serving.cluster import cluster_report_from_dict, simulate_cluster
from repro.serving.faults import FaultSpec
from repro.serving.fluid import estimate_serving
from repro.serving.metrics import SLO
from repro.serving.simulator import ServingSimulator, simulate_serving
from repro.serving.spec import ServingSpec
from repro.serving.trace import OverlaySpec, generate_trace, request_classes_from_settings
from repro.workloads.llm import GPT3_30B
from repro.workloads.registry import SCENARIO_REGISTRY, get_scenario
from repro.workloads.scenario import ScenarioKnobs

SLO_SPEC = SLO(ttft_s=1.0, tpot_s=0.1)
NUM_REQUESTS = 300
SEED = 7

#: Golden bounds: (scenario, rate) -> {metric: allowed error}.  Relative
#: error for everything except ``slo`` (absolute attainment difference).
#: Rates sample the load bands: near-idle (0.01), the capacity knee
#: (0.04 — single-deployment capacity is ~0.054 req/s for the chat mix,
#: ~0.04 for the single-class mix), moderate overload (0.2) and deep
#: saturation (32).
GOLDEN_BOUNDS: dict[tuple[str, float], dict[str, float]] = {
    ("chat-serving", 0.01): {"tokens": 0.08, "makespan": 0.10, "energy": 0.25,
                             "ttft": 3.5, "tpot": 0.10, "slo": 0.30},
    ("chat-serving", 0.04): {"tokens": 0.08, "makespan": 0.10, "energy": 0.30,
                             "ttft": 1.2, "tpot": 0.14, "slo": 0.35},
    ("chat-serving", 0.2): {"tokens": 0.25, "makespan": 0.20, "energy": 0.12,
                            "ttft": 0.25, "tpot": 0.15, "slo": 0.10},
    ("chat-serving", 32.0): {"tokens": 0.25, "makespan": 0.20, "energy": 0.10,
                             "ttft": 0.15, "tpot": 0.15, "slo": 0.02},
    ("llm-serving", 0.01): {"tokens": 0.08, "makespan": 0.10, "energy": 0.30,
                            "ttft": 20.0, "tpot": 0.06, "slo": 0.45},
    # The knee: rho ~ 1 for the single-class mix.  The attainment bound
    # is vacuous on purpose — fluid misclassifies the knee and we track
    # that here instead of pretending otherwise.
    ("llm-serving", 0.04): {"tokens": 0.12, "makespan": 0.12, "energy": 0.20,
                            "ttft": 30.0, "tpot": 0.14, "slo": 1.0},
    ("llm-serving", 0.2): {"tokens": 0.12, "makespan": 0.12, "energy": 0.12,
                           "ttft": 1.5, "tpot": 0.25, "slo": 0.12},
    ("llm-serving", 32.0): {"tokens": 0.06, "makespan": 0.06, "energy": 0.06,
                            "ttft": 0.12, "tpot": 0.06, "slo": 0.04},
}


def _llm_scenarios() -> list[str]:
    return sorted(name for name, scenario in SCENARIO_REGISTRY.items()
                  if scenario.supports(GPT3_30B))


def _settings_for(scenario_name: str):
    return get_scenario(scenario_name).make_settings(ScenarioKnobs(
        batch=1, precision=Precision.INT8,
        input_tokens=1024, output_tokens=512))


def _rel(estimate: float, exact: float) -> float:
    return abs(estimate - exact) / exact if exact else abs(estimate)


def test_every_llm_scenario_has_golden_bounds():
    """Registering a new LLM scenario must come with fluid bounds."""
    covered = {scenario for scenario, _ in GOLDEN_BOUNDS}
    assert covered == set(_llm_scenarios())


@pytest.mark.parametrize(("scenario", "rate"), sorted(GOLDEN_BOUNDS))
def test_fluid_error_within_golden_bounds(scenario, rate):
    """Fluid vs exact DES stays inside the measured-plus-headroom bounds."""
    bounds = GOLDEN_BOUNDS[(scenario, rate)]
    scenario_settings = _settings_for(scenario)
    classes = request_classes_from_settings(scenario_settings)
    trace = generate_trace("poisson", classes, rate, NUM_REQUESTS, SEED)
    exact = ServingSimulator(GPT3_30B, design_a()).run(
        trace, slo=SLO_SPEC, collect_requests=False)
    spec = ServingSpec(arrival_rate=rate, num_requests=NUM_REQUESTS,
                       seed=SEED, slo=SLO_SPEC, fidelity="fluid")
    fluid = estimate_serving(GPT3_30B, design_a(), spec, scenario_settings)

    assert fluid.completed == exact.completed == NUM_REQUESTS
    errors = {
        "tokens": _rel(fluid.tokens_per_second, exact.tokens_per_second),
        "makespan": _rel(fluid.makespan_s, exact.makespan_s),
        "energy": _rel(fluid.total_energy_joules, exact.total_energy_joules),
        "ttft": _rel(fluid.ttft.mean_s, exact.ttft.mean_s),
        "tpot": _rel(fluid.tpot.mean_s, exact.tpot.mean_s),
        "slo": abs(fluid.slo_attainment - exact.slo_attainment),
    }
    for metric, bound in bounds.items():
        assert errors[metric] <= bound, (
            f"{scenario} @ {rate} req/s: fluid {metric} error "
            f"{errors[metric]:.3f} exceeds golden bound {bound}")


class TestFluidProperties:
    @settings(derandomize=True, deadline=None, max_examples=15)
    @given(rate=st.floats(min_value=0.005, max_value=64.0),
           num_requests=st.integers(min_value=50, max_value=5000))
    def test_fluid_report_is_sane_and_deterministic(self, rate, num_requests):
        """Structural invariants hold at any load; estimates replay exactly."""
        spec = ServingSpec(arrival_rate=rate, num_requests=num_requests,
                           slo=SLO_SPEC, fidelity="fluid")
        scenario_settings = _settings_for("chat-serving")
        report = estimate_serving(GPT3_30B, design_a(), spec, scenario_settings)
        again = estimate_serving(GPT3_30B, design_a(), spec, scenario_settings)
        assert report.to_dict() == again.to_dict()
        assert report.completed == num_requests
        assert report.requests == ()
        assert report.tokens_per_second > 0
        assert report.total_energy_joules > 0
        assert 0.0 <= report.slo_attainment <= 1.0
        for summary in (report.ttft, report.tpot, report.e2e):
            assert 0.0 <= summary.p50_s <= summary.p95_s <= summary.p99_s <= summary.max_s
        # The trace must complete no faster than the offered load allows.
        assert report.makespan_s >= (num_requests - 1) / rate * 0.99

    def test_fluid_cost_independent_of_trace_length(self):
        """Same mean rate, 100x the requests: same per-request picture."""
        scenario_settings = _settings_for("chat-serving")
        short = estimate_serving(GPT3_30B, design_a(), ServingSpec(
            arrival_rate=0.04, num_requests=500, slo=SLO_SPEC,
            fidelity="fluid"), scenario_settings)
        long = estimate_serving(GPT3_30B, design_a(), ServingSpec(
            arrival_rate=0.04, num_requests=50_000, slo=SLO_SPEC,
            fidelity="fluid"), scenario_settings)
        assert long.ttft.mean_s == pytest.approx(short.ttft.mean_s, rel=0.05)
        assert long.tokens_per_second == pytest.approx(
            short.tokens_per_second, rel=0.05)


class TestFidelityDispatch:
    def test_simulate_serving_routes_fluid_specs(self):
        scenario_settings = _settings_for("chat-serving")
        spec = ServingSpec(arrival_rate=0.04, num_requests=200,
                           slo=SLO_SPEC, fidelity="fluid")
        via_dispatch = simulate_serving(GPT3_30B, design_a(), spec,
                                        scenario_settings)
        direct = estimate_serving(GPT3_30B, design_a(), spec, scenario_settings)
        assert via_dispatch.to_dict() == direct.to_dict()

    def test_fluid_cluster_report_round_trips(self):
        """Fluid fleet reports survive the store's dict round-trip exactly."""
        scenario_settings = _settings_for("chat-serving")
        spec = ServingSpec(arrival_rate=0.1, num_requests=300, slo=SLO_SPEC,
                           replicas=3, router="least-outstanding-requests",
                           fidelity="fluid")
        report = simulate_cluster(GPT3_30B, design_a(), spec, scenario_settings)
        assert report.fleet_size == 3
        assert report.completed == 300
        restored = cluster_report_from_dict(
            report.to_dict(include_requests=False))
        assert restored == report

    def test_fluid_fleet_tracks_exact_fleet_throughput(self):
        """Per-replica decomposition stays near the exact cluster answer."""
        scenario_settings = _settings_for("chat-serving")
        fluid_spec = ServingSpec(arrival_rate=0.1, num_requests=300,
                                 slo=SLO_SPEC, replicas=3, fidelity="fluid")
        fluid = simulate_cluster(GPT3_30B, design_a(), fluid_spec,
                                 scenario_settings)
        exact = simulate_cluster(GPT3_30B, design_a(),
                                 dataclasses.replace(fluid_spec,
                                                     fidelity="exact"),
                                 scenario_settings)
        assert fluid.tokens_per_second == pytest.approx(
            exact.tokens_per_second, rel=0.25)
        assert fluid.total_devices == exact.total_devices


class TestSpecValidation:
    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            ServingSpec(fidelity="approximate")

    def test_fluid_with_faults_rejected(self):
        with pytest.raises(ValueError, match="fault"):
            ServingSpec(fidelity="fluid",
                        faults=(FaultSpec(kind="replica-crash", at_s=10.0),))

    def test_fluid_with_overlay_rejected(self):
        with pytest.raises(ValueError, match="overlay|exact"):
            ServingSpec(fidelity="fluid",
                        overlay=OverlaySpec(kind="flash-crowd", magnitude=2.0))

    def test_fluid_spec_summary_is_labelled(self):
        assert "[fluid]" in ServingSpec(fidelity="fluid").summary()
