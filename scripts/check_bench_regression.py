#!/usr/bin/env python
"""Benchmark-regression gate: fresh BENCH_*.json vs. committed baselines.

The benchmark suite writes machine-readable perf records at the repository
root (``BENCH_sweep.json``, ``BENCH_serving.json``,
``BENCH_serving_scale.json``, ``BENCH_cluster.json``,
``BENCH_optimize.json``, ``BENCH_faults.json``, ``BENCH_obs.json``,
``BENCH_gateway.json``);
this script compares them against the copies committed under
``benchmarks/baselines/`` and turns the comparison into a CI verdict:

* **wall-time metrics** regress when the fresh value exceeds
  ``baseline * (1 + threshold)`` *and* ``baseline + absolute floor`` — the
  floor keeps millisecond-scale timings (e.g. the fully cached re-sweep)
  from tripping the gate on scheduler noise.  The default thresholds fail
  at >25 % and warn at >10 %; CI passes wider ones because hosted runners
  are not the machine the baselines were recorded on.
* **cache-hit-rate metrics** regress on an *absolute* drop (default: fail
  below baseline − 0.02, warn below baseline − 0.005) — hit rates are what
  make the wall-times possible, so they are gated directly.
* **count metrics** (e.g. graph simulations of a cached re-sweep) fail
  whenever the fresh value exceeds the baseline at all: a cached re-sweep
  that starts simulating again is a correctness bug, not noise.
* **throughput metrics** (e.g. requests simulated per wall-second) are
  wall-times upside down: they regress when the fresh value *drops*
  relative to baseline, gated with the same relative thresholds.
* **overhead metrics** (the telemetry enabled-overhead fraction) gate
  against an *absolute* ceiling (fail at >= 0.05, warn at >= 0.035),
  not a baseline ratio — the 5 % budget is part of the telemetry
  contract (``src/repro/obs``), so creeping toward it from a tiny
  baseline must not read as "within 25 % of before".

Regenerating the baselines after an intentional perf change::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_sweep_engine.py \\
        benchmarks/bench_serving.py benchmarks/bench_cluster.py
    python scripts/check_bench_regression.py --update

then commit the refreshed ``benchmarks/baselines/*.json`` and justify the
shift in the commit message (see CONTRIBUTING.md).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
from dataclasses import dataclass

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class Metric:
    """One gated value inside a benchmark record."""

    path: str            # dotted key path inside the JSON record
    kind: str            # "wall" | "rate" | "count"

    def read(self, record: dict) -> float:
        value: object = record
        for key in self.path.split("."):
            if not isinstance(value, dict) or key not in value:
                raise KeyError(f"metric '{self.path}' missing from record")
            value = value[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError(f"metric '{self.path}' is not numeric: {value!r}")
        return float(value)


#: The gated benchmark files and the metrics compared in each.
BENCH_METRICS: dict[str, tuple[Metric, ...]] = {
    "BENCH_sweep.json": (
        Metric("serial_wall_seconds", "wall"),
        Metric("parallel_wall_seconds", "wall"),
        Metric("cached_wall_seconds", "wall"),
        Metric("cached_resweep_simulations", "count"),
    ),
    "BENCH_serving.json": (
        Metric("wall_seconds", "wall"),
        Metric("cache_hit_rate", "rate"),
    ),
    "BENCH_serving_scale.json": (
        Metric("exact.wall_seconds", "wall"),
        Metric("exact.requests_per_wall_second", "throughput"),
        Metric("exact.cache_hit_rate", "rate"),
        Metric("fluid.speedup_vs_exact", "throughput"),
    ),
    "BENCH_cluster.json": (
        Metric("wall_seconds", "wall"),
        Metric("cache_hit_rate", "rate"),
    ),
    "BENCH_optimize.json": (
        Metric("cold_wall_seconds", "wall"),
        Metric("warm_wall_seconds", "wall"),
        Metric("warm_simulations", "count"),
    ),
    "BENCH_faults.json": (
        Metric("wall_seconds", "wall"),
        Metric("cache_hit_rate", "rate"),
        Metric("shed_requests", "count"),
    ),
    "BENCH_obs.json": (
        Metric("overhead_fraction", "overhead"),
    ),
    "BENCH_gateway.json": (
        Metric("cold_wall_seconds", "wall"),
        Metric("warm_wall_seconds", "wall"),
        Metric("warm_simulations", "count"),
        Metric("warm_hit_rate", "rate"),
    ),
}

#: Wall-time regressions below this absolute delta (seconds) never gate.
WALL_ABSOLUTE_FLOOR_S = 0.25

#: Overhead metrics gate on these absolute ceilings (not baseline ratios):
#: the telemetry contract's enabled-overhead budget and its early warning.
OVERHEAD_FAIL_CEILING = 0.05
OVERHEAD_WARN_CEILING = 0.035


def compare(name: str, metric: Metric, fresh: float, base: float,
            fail_threshold: float, warn_threshold: float) -> tuple[str, str]:
    """Return (verdict, detail) for one metric; verdict in ok/warn/fail."""
    if metric.kind == "wall":
        # The absolute noise floor applies BEFORE any relative comparison:
        # a sub-floor delta never gates, however large the ratio — which is
        # what keeps zero/near-zero baselines (the fully cached re-sweep
        # records wall-times of milliseconds, sometimes 0.0) from dividing
        # their way into a spurious verdict, or into a ZeroDivisionError.
        delta = fresh - base
        if base > 0:
            detail = f"{base:.3f}s -> {fresh:.3f}s ({delta / base:+.1%})"
        else:
            detail = f"{base:.3f}s -> {fresh:.3f}s (zero baseline, absolute gate)"
        if delta <= WALL_ABSOLUTE_FLOOR_S / 2:
            return "ok", detail
        # Past the floor, a missing/zero baseline means any regression is
        # infinitely relative — gate on the absolute delta alone.
        ratio = (delta / base) if base > 0 else float("inf")
        if delta > WALL_ABSOLUTE_FLOOR_S and ratio > fail_threshold:
            return "fail", detail
        if ratio > warn_threshold:
            return "warn", detail
        return "ok", detail
    if metric.kind == "rate":
        drop = base - fresh
        detail = f"{base:.4f} -> {fresh:.4f} ({-drop:+.4f})"
        if drop > 0.02:
            return "fail", detail
        if drop > 0.005:
            return "warn", detail
        return "ok", detail
    if metric.kind == "throughput":
        # Inverted wall-time: higher is better, so gate the relative drop.
        # No absolute floor — these are large numbers (hundreds of
        # thousands of requests per wall-second), never near zero.
        drop = (base - fresh) / base if base > 0 else 0.0
        detail = f"{base:,.0f} -> {fresh:,.0f} ({-drop:+.1%})"
        if drop > fail_threshold:
            return "fail", detail
        if drop > warn_threshold:
            return "warn", detail
        return "ok", detail
    if metric.kind == "count":
        detail = f"{base:.0f} -> {fresh:.0f}"
        return ("fail" if fresh > base else "ok"), detail
    if metric.kind == "overhead":
        # Absolute ceiling, baseline shown for context only: the budget
        # is a contract, not a trajectory.
        detail = (f"{base:+.2%} -> {fresh:+.2%} "
                  f"(ceiling {OVERHEAD_FAIL_CEILING:.0%})")
        if fresh >= OVERHEAD_FAIL_CEILING:
            return "fail", detail
        if fresh >= OVERHEAD_WARN_CEILING:
            return "warn", detail
        return "ok", detail
    raise ValueError(f"unknown metric kind '{metric.kind}'")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json records against committed "
                    "baselines and fail on wall-time/cache regressions")
    parser.add_argument("--bench-dir", type=pathlib.Path, default=REPO_ROOT,
                        help="directory holding the fresh BENCH_*.json files "
                             "(default: repository root)")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=REPO_ROOT / "benchmarks" / "baselines",
                        help="directory holding the committed baselines")
    parser.add_argument("--fail-threshold", type=float, default=0.25,
                        help="relative wall-time regression that fails "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--warn-threshold", type=float, default=0.10,
                        help="relative wall-time regression that warns "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--update", action="store_true",
                        help="copy the fresh records over the baselines "
                             "instead of comparing")
    args = parser.parse_args(argv)

    if args.warn_threshold > args.fail_threshold:
        parser.error("--warn-threshold must not exceed --fail-threshold")

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for name in BENCH_METRICS:
            source = args.bench_dir / name
            if not source.exists():
                print(f"SKIP  {name}: no fresh record at {source}")
                continue
            shutil.copyfile(source, args.baseline_dir / name)
            print(f"WROTE {args.baseline_dir / name}")
        return 0

    failures = warnings = 0
    for name, metrics in BENCH_METRICS.items():
        fresh_path = args.bench_dir / name
        base_path = args.baseline_dir / name
        if not fresh_path.exists():
            print(f"FAIL  {name}: fresh record missing at {fresh_path} "
                  "(run the benchmark suite first)")
            failures += 1
            continue
        if not base_path.exists():
            print(f"FAIL  {name}: no committed baseline at {base_path} "
                  "(run with --update and commit it)")
            failures += 1
            continue
        fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
        base = json.loads(base_path.read_text(encoding="utf-8"))
        for metric in metrics:
            try:
                verdict, detail = compare(name, metric, metric.read(fresh),
                                          metric.read(base),
                                          args.fail_threshold, args.warn_threshold)
            except (KeyError, TypeError) as error:
                print(f"FAIL  {name}:{metric.path}: {error}")
                failures += 1
                continue
            label = {"ok": "OK   ", "warn": "WARN ", "fail": "FAIL "}[verdict]
            print(f"{label} {name}:{metric.path}: {detail}")
            failures += verdict == "fail"
            warnings += verdict == "warn"

    print(f"benchmark regression check: {failures} failure(s), "
          f"{warnings} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
