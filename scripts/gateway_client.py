#!/usr/bin/env python
"""Minimal stdlib client for the simulation gateway.

Submits one API request payload to a running ``repro-sim gateway``,
polls the job until it finishes and prints the result's cost accounting
in the CLI's own phrasing — so the CI smoke can assert the multi-tenant
store contract with a grep::

    python scripts/gateway_client.py --url http://127.0.0.1:8080 \\
        --payload request.json --out result.json
    # second submission of the same payload:
    #   new simulations: 0; served from store: 1

No dependencies beyond the standard library (``urllib`` + ``json``), so
the client runs anywhere the gateway does.  ``--payload -`` reads the
request from stdin; without ``--payload`` the client submits the default
``{"kind": "<--kind>"}`` request.  Exits 0 when the job completes, 1
when it fails or is cancelled, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def _call(url: str, method: str = "GET", payload=None, timeout: float = 30.0):
    """One JSON round-trip; HTTP errors return their decoded body."""
    body = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _submit(base_url: str, payload: dict, retries: float) -> tuple[int, dict]:
    """POST the payload, retrying while the gateway is still starting up."""
    route = f"{base_url}/v1/{payload.get('kind', '')}"
    deadline = time.time() + retries
    while True:
        try:
            return _call(route, "POST", payload)
        except urllib.error.URLError as error:
            if time.time() >= deadline:
                raise SystemExit(
                    f"cannot reach gateway at {base_url}: {error}") from None
            time.sleep(0.2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="submit one request to a repro-sim gateway, wait for the "
                    "job and print its cost accounting")
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="base URL of the gateway (default %(default)s)")
    parser.add_argument("--payload",
                        help="JSON file holding the request payload "
                             "('-' reads stdin); defaults to the --kind "
                             "request with all-default fields")
    parser.add_argument("--kind", default="simulate",
                        help="request kind when no --payload is given "
                             "(default %(default)s)")
    parser.add_argument("--out",
                        help="write the full result envelope JSON here")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for the job (default "
                             "%(default)s)")
    parser.add_argument("--connect-retries", type=float, default=10.0,
                        help="seconds to retry the first connection while "
                             "the gateway starts (default %(default)s)")
    args = parser.parse_args(argv)

    if args.payload == "-":
        payload = json.load(sys.stdin)
    elif args.payload:
        with open(args.payload, encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = {"kind": args.kind}
    if not isinstance(payload, dict) or "kind" not in payload:
        print("payload must be a JSON object with a 'kind' field",
              file=sys.stderr)
        return 2

    status, accepted = _submit(args.url, payload, args.connect_retries)
    if status != 202:
        error = accepted.get("error", accepted)
        print(f"submission rejected ({status}): {error.get('code')}: "
              f"{error.get('message')}", file=sys.stderr)
        return 1
    print(f"submitted {accepted['job_id']} "
          f"(fingerprint {accepted['fingerprint'][:12]})")

    deadline = time.time() + args.timeout
    while True:
        status, job = _call(f"{args.url}{accepted['status_url']}")
        if status != 200:
            print(f"status poll failed ({status}): {job}", file=sys.stderr)
            return 1
        if job["status"] in ("done", "failed", "cancelled"):
            break
        if time.time() >= deadline:
            print(f"job {accepted['job_id']} still {job['status']} after "
                  f"{args.timeout}s", file=sys.stderr)
            return 1
        time.sleep(0.1)

    took = (job["finished_s"] or 0) - job["submitted_s"]
    print(f"job {job['job_id']}: {job['status']} in {took:.2f} s")
    if job["status"] != "done":
        error = job.get("error") or {}
        print(f"{error.get('code', 'job-failed')}: "
              f"{error.get('message', 'no detail')}", file=sys.stderr)
        return 1

    status, result = _call(f"{args.url}{accepted['result_url']}")
    if status != 200:
        print(f"result fetch failed ({status}): {result}", file=sys.stderr)
        return 1
    hits = result["store_hits"]
    print(f"new simulations: {result['new_simulations']}; "
          f"served from store: {hits}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote result envelope to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
