#!/usr/bin/env python
"""Multi-TPU scaling study (the paper's Fig. 8 evaluation).

Runs GPT-3-30B and DiT-XL/2 inference on rings of 1, 2 and 4 TPUs with
pipeline parallelism for the baseline TPUv4i, Design A and Design B, and
prints throughput scaling plus the MXU energy reduction of the CIM designs.

Run with::

    python examples/multi_tpu_scaling.py
"""

from __future__ import annotations

from repro import (
    DIT_XL_2,
    GPT3_30B,
    DiTInferenceSettings,
    LLMInferenceSettings,
    MultiTPUSystem,
    design_a,
    design_b,
    tpuv4i_baseline,
)
from repro.analysis.report import format_table

DEVICE_COUNTS = (1, 2, 4)


def main() -> None:
    llm_settings = LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                        decode_kv_samples=2)
    dit_settings = DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50)
    designs = {
        "baseline": tpuv4i_baseline(),
        "design-a": design_a(),
        "design-b": design_b(),
    }

    llm_rows = []
    dit_rows = []
    for label, config in designs.items():
        for devices in DEVICE_COUNTS:
            system = MultiTPUSystem(config, devices)
            llm = system.simulate_llm(GPT3_30B, llm_settings)
            dit = system.simulate_dit(DIT_XL_2, dit_settings)
            llm_rows.append([label, devices, f"{llm.throughput:.1f} tokens/s",
                             f"{llm.energy_per_item * 1e3:.2f} mJ/token"])
            dit_rows.append([label, devices, f"{dit.throughput:.3f} images/s",
                             f"{dit.energy_per_item:.2f} J/image"])

    print(format_table(["design", "TPUs", "throughput", "MXU energy"], llm_rows,
                       title="GPT-3-30B serving throughput (pipeline parallel ring)"))
    print()
    print(format_table(["design", "TPUs", "throughput", "MXU energy"], dit_rows,
                       title="DiT-XL/2 sampling throughput (pipeline parallel ring)"))


if __name__ == "__main__":
    main()
