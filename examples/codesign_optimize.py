#!/usr/bin/env python
"""Find the cheapest fleet meeting a chat SLO with the co-design optimizer.

Searches the joint hardware × deployment space — TPU design, numeric
precision, routing policy and replica count — for Pareto-optimal fleets
serving a chat mix at a fixed request rate, under a cost/tail-latency
objective pair and an SLO-attainment constraint.  The successive-halving
strategy prunes dominated candidates on a cheap short trace before
re-scoring the survivors at full fidelity, and a persistent result store
makes re-running the script (or widening the search later) nearly free.

Run with::

    python examples/codesign_optimize.py
"""

from __future__ import annotations

import pathlib
import tempfile

from repro.analysis.report import format_table
from repro.optimize import CodesignOptimizer, DesignSpace, parse_constraint
from repro.serving import SLO
from repro.sweep import ResultStore
from repro.workloads.llm import LLAMA2_7B

ARRIVAL_RATE = 48.0
SLO_TARGET = SLO(ttft_s=1.0, tpot_s=0.35)

SPACE = DesignSpace(
    designs=("baseline", "design-a", "design-b"),
    precisions=("int8", "bf16"),
    routers=("round-robin", "least-outstanding-requests"),
    replica_counts=(2, 3, 4, 6))


def run(store: ResultStore) -> None:
    optimizer = CodesignOptimizer(
        LLAMA2_7B, SPACE,
        objectives=("cost-per-million-tokens", "p99-ttft"),
        constraints=(parse_constraint("slo>=0.9"),),
        strategy="successive-halving",
        arrival_rate=ARRIVAL_RATE, num_requests=400,
        input_tokens=64, output_tokens=32, slo=SLO_TARGET, seed=7,
        store=store)
    frontier = optimizer.run()

    rows = [[point.result.design, point.result.precision, point.result.replicas,
             point.result.router, f"${point.values[0]:.3f}",
             f"{point.values[1] * 1e3:.0f} ms",
             f"{point.result.slo_attainment * 100:.1f}%",
             point.dominated_count]
            for point in frontier.points]
    print(format_table(
        ["design", "precision", "replicas", "router", "$/Mtok", "p99 TTFT",
         "SLO attained", "dominates"],
        rows,
        title=f"Pareto frontier: {LLAMA2_7B.name} chat at {ARRIVAL_RATE:g} req/s "
              f"(SLO attainment >= 90%)"))
    print(f"searched {frontier.candidates} candidates with "
          f"{frontier.short_runs} short + {frontier.full_runs} full simulations "
          f"({frontier.store_served} served from the store, "
          f"{frontier.capacity_pruned} pruned by the capacity lower bound)")
    if frontier.points:
        cheapest = frontier.points[0].result
        print(f"cheapest SLO-meeting fleet: {cheapest.replicas}x "
              f"{cheapest.design}/{cheapest.precision} via {cheapest.router} "
              f"at ${cheapest.cost_per_million_tokens_dollars:.3f}/Mtok\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_path = pathlib.Path(tmp) / "codesign_store.jsonl"
        print("cold search (everything simulated):")
        run(ResultStore(store_path))
        print("warm search (same store - zero new simulations):")
        run(ResultStore(store_path))


if __name__ == "__main__":
    main()
