#!/usr/bin/env python
"""Sweep the widened scenario grid with the parallel, memoised sweep engine.

Evaluates every registered model (GPT-3-30B/175B, Llama-2-7B/13B, DiT-XL/2)
on every predefined TPU design at INT8 and BF16 across two batch sizes — the
generalisation of the paper's Table IV grid — then re-runs the sweep to show
the content-addressed cache serving it for free, and exports the rows.

Run with::

    python examples/scenario_sweep.py
"""

from __future__ import annotations

import time

from repro import SweepEngine, default_grid
from repro.analysis.report import format_table
from repro.sweep.export import write_csv


def main() -> None:
    grid = default_grid()
    engine = SweepEngine()

    start = time.perf_counter()
    rows = engine.sweep(grid, workers=4)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    engine.sweep(grid)
    warm = time.perf_counter() - start

    # Print the INT8 batch-8 slice (one row per design × model).
    table_rows = [[row.design, row.workload, row.scenario,
                   f"{row.latency_seconds * 1e3:.1f} ms",
                   f"{row.throughput:.2f} {row.item_unit}s/s",
                   f"{row.mxu_energy_joules:.2f} J"]
                  for row in rows if row.precision == "int8" and row.batch == 8]
    print(format_table(["design", "model", "scenario", "latency", "throughput", "MXU energy"],
                       table_rows, title="Scenario sweep (INT8, batch 8 slice)"))

    stats = engine.stats
    print(f"\n{len(rows)} points: cold sweep {cold * 1e3:.0f} ms "
          f"({stats.simulations} graph simulations), "
          f"cached re-sweep {warm * 1e3:.0f} ms (0 new simulations)")
    print(f"rows exported to {write_csv(rows, 'scenario_sweep.csv')}")


if __name__ == "__main__":
    main()
