#!/usr/bin/env python
"""End-to-end LLM serving analysis on CIM-based TPUs.

Simulates GPT-3-30B inference (1024 prompt tokens, 512 generated tokens,
batch 8) on the baseline TPUv4i, the default CIM TPU and Design A, prints the
prefill/decode split, the per-category latency breakdown of the decode layer,
and the resulting end-to-end throughput and MXU energy per generated token.

Run with::

    python examples/llm_inference.py [model-name]

where ``model-name`` is one of the registered LLMs (default ``gpt3-30b``).
"""

from __future__ import annotations

import sys

from repro import (
    GPT3_30B,
    InferenceSimulator,
    LLMInferenceSettings,
    cim_tpu_default,
    design_a,
    get_model,
    tpuv4i_baseline,
)
from repro.analysis.breakdown import latency_breakdown
from repro.analysis.report import format_table
from repro.workloads.llm import LLMConfig


def main() -> None:
    model = GPT3_30B
    if len(sys.argv) > 1:
        candidate = get_model(sys.argv[1])
        if not isinstance(candidate, LLMConfig):
            raise SystemExit(f"'{sys.argv[1]}' is not an LLM configuration")
        model = candidate

    settings = LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512)
    designs = {
        "TPUv4i baseline": tpuv4i_baseline(),
        "CIM TPU (4 x 16x8)": cim_tpu_default(),
        "Design A (4 x 8x8)": design_a(),
    }

    rows = []
    decode_breakdowns = {}
    for label, config in designs.items():
        simulator = InferenceSimulator(config)
        inference = simulator.simulate_llm_inference(model, settings)
        decode_breakdowns[label] = simulator.simulate_llm_decode_layer(model, settings)
        prefill_share = inference.stage("prefill").seconds / inference.total_seconds
        rows.append([
            label,
            f"{inference.total_seconds:.2f} s",
            f"{prefill_share * 100:.0f}% / {(1 - prefill_share) * 100:.0f}%",
            f"{inference.throughput:.1f} tokens/s",
            f"{inference.mxu_energy / inference.items * 1e3:.2f} mJ/token",
        ])

    print(format_table(
        ["design", "end-to-end latency", "prefill/decode split", "throughput", "MXU energy"],
        rows,
        title=f"{model.name} inference (batch 8, 1024 in / 512 out)"))

    print()
    breakdown_rows = []
    for label, result in decode_breakdowns.items():
        for row in latency_breakdown(result)[:5]:
            breakdown_rows.append([label, row.label, f"{row.value * 1e3:.3f} ms",
                                   f"{row.fraction * 100:.1f}%"])
    print(format_table(
        ["design", "layer category", "latency", "share"],
        breakdown_rows,
        title="Decode-layer latency breakdown (top five categories per design)"))


if __name__ == "__main__":
    main()
