#!/usr/bin/env python
"""Quickstart: compare the baseline TPUv4i against the CIM-based TPU.

Runs one GPT-3-30B Transformer layer (prefill and decode, the paper's Fig. 6
setting) and one DiT-XL/2 block on both chip models and prints the latency
change and MXU energy reduction the CIM-MXUs deliver.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DIT_XL_2,
    GPT3_30B,
    DiTInferenceSettings,
    InferenceSimulator,
    LLMInferenceSettings,
    cim_tpu_default,
    tpuv4i_baseline,
)
from repro.analysis.breakdown import overall_comparison
from repro.analysis.report import format_table


def main() -> None:
    baseline = InferenceSimulator(tpuv4i_baseline())
    cim = InferenceSimulator(cim_tpu_default())

    llm_settings = LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512)
    dit_settings = DiTInferenceSettings(batch=8, image_resolution=512)

    panels = {
        "GPT-3-30B prefill layer": (
            baseline.simulate_llm_prefill_layer(GPT3_30B, llm_settings),
            cim.simulate_llm_prefill_layer(GPT3_30B, llm_settings),
        ),
        "GPT-3-30B decode layer": (
            baseline.simulate_llm_decode_layer(GPT3_30B, llm_settings),
            cim.simulate_llm_decode_layer(GPT3_30B, llm_settings),
        ),
        "DiT-XL/2 block": (
            baseline.simulate_dit_block(DIT_XL_2, dit_settings),
            cim.simulate_dit_block(DIT_XL_2, dit_settings),
        ),
    }

    rows = []
    for name, (base_result, cim_result) in panels.items():
        headline = overall_comparison(base_result, cim_result)
        rows.append([
            name,
            f"{headline['baseline_latency_s'] * 1e3:.2f} ms",
            f"{headline['candidate_latency_s'] * 1e3:.2f} ms",
            f"{headline['latency_change_percent']:+.1f}%",
            f"{headline['mxu_energy_reduction_factor']:.1f}x",
        ])

    print(format_table(
        ["workload", "TPUv4i latency", "CIM-TPU latency", "latency change", "MXU energy saving"],
        rows,
        title="CIM-based TPU vs. baseline TPUv4i (paper Fig. 6 setting)"))


if __name__ == "__main__":
    main()
