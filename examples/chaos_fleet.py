#!/usr/bin/env python
"""Chaos-test a chat fleet: a resilience constraint changes the Pareto pick.

Prices llama2-7b fleets serving 100 req/s of short chat traffic while a
replica crashes mid-run (the incident a one-crash-per-hour fault model
eventually deals you, pinned to a fixed onset so the run is exactly
reproducible).  Without a resilience constraint the optimizer picks the
smallest fleet that is cheapest per token — but that fleet runs so close
to capacity that after the crash its windowed SLO attainment never
re-reaches 95 % before the run ends (``recovery inf``).  Adding
``recovery_s<=30`` filters it out, and the pick moves to a fleet with
enough headroom to absorb the outage.

Both searches share one persistent result store: the chaos scenario is
part of the evaluation fingerprint, so the second search re-prices nothing
— constraints filter cached rows.

Run with::

    python examples/chaos_fleet.py
"""

from __future__ import annotations

import pathlib
import tempfile

from repro.analysis.report import format_table
from repro.optimize import CodesignOptimizer, DesignSpace, parse_constraint
from repro.serving import SLO, FaultSpec
from repro.sweep import ResultStore
from repro.workloads.llm import LLAMA2_7B

ARRIVAL_RATE = 100.0
SLO_TARGET = SLO(ttft_s=1.0, tpot_s=0.35)

SPACE = DesignSpace(
    designs=("design-a",), precisions=("int8",),
    routers=("round-robin",), replica_counts=(8, 10, 12))

#: One replica dies 2 s in and stays down for 6 s (plus the autoscaler's
#: cold start).  Its in-flight work drains back to the router.
CRASH = (FaultSpec("replica-crash", at_s=2.0, duration_s=6.0, replica=0),)


def search(store: ResultStore, constraints=()):
    optimizer = CodesignOptimizer(
        LLAMA2_7B, SPACE,
        objectives=("cost-per-million-tokens", "recovery-s"),
        constraints=constraints, strategy="exhaustive",
        arrival_rate=ARRIVAL_RATE, num_requests=2000,
        input_tokens=64, output_tokens=32, slo=SLO_TARGET, seed=7,
        faults=CRASH, store=store)
    frontier = optimizer.run()

    rows = [[point.result.replicas, f"${point.values[0]:.3f}",
             ("never" if point.result.recovery_s == float("inf")
              else f"{point.result.recovery_s:.1f} s"),
             f"{point.result.availability * 100:.2f}%",
             point.result.disrupted_requests]
            for point in frontier.points]
    label = ", ".join(c.name for c in constraints) or "none"
    print(format_table(
        ["replicas", "$/Mtok", "recovery to SLO", "availability", "disrupted"],
        rows,
        title=f"Pareto frontier under a mid-run crash (constraints: {label})"))
    print(f"searched {frontier.candidates} candidates: "
          f"{frontier.full_runs} simulated, "
          f"{frontier.store_served} served from the store\n")
    return frontier.points[0].result if frontier.points else None


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(pathlib.Path(tmp) / "chaos_store.jsonl")

        print("unconstrained search (cheapest fleet wins):")
        carefree = search(store)

        print("resilient search (must re-attain the SLO within 30 s):")
        resilient = search(store, (parse_constraint("recovery_s<=30"),))

        if carefree is None or resilient is None:
            raise SystemExit("expected both searches to produce a frontier")
        print(f"cheapest fleet ignoring resilience: {carefree.replicas}x "
              f"{carefree.design} at "
              f"${carefree.cost_per_million_tokens_dollars:.3f}/Mtok "
              f"(recovery: never)")
        print(f"cheapest fleet with recovery_s<=30:  {resilient.replicas}x "
              f"{resilient.design} at "
              f"${resilient.cost_per_million_tokens_dollars:.3f}/Mtok "
              f"(recovery: {resilient.recovery_s:.1f} s)")
        if resilient.replicas == carefree.replicas:
            raise SystemExit("expected the resilience constraint to change "
                             "the Pareto pick")
        print("the resilience constraint changed the pick: the carefree "
              "fleet never re-attains its SLO after the crash.")


if __name__ == "__main__":
    main()
