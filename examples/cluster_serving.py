#!/usr/bin/env python
"""Serve one chat trace through a routed, autoscaled multi-replica fleet.

Routes a bursty chat-mix trace across four Design A replicas under each
registered routing policy, prints the fleet trade-off table (tail latency,
goodput, cost per million tokens), and then sizes the fleet for an SLO at a
target rate with :func:`repro.analysis.capacity.plan_fleet`.

Run with::

    python examples/cluster_serving.py
"""

from __future__ import annotations

from repro.analysis.capacity import plan_fleet
from repro.analysis.report import format_table
from repro.core.designs import design_a
from repro.serving import (
    SLO,
    ROUTER_REGISTRY,
    ClusterSimulator,
    ServingSimulator,
    generate_trace,
)
from repro.sweep.cache import CachingInferenceSimulator
from repro.workloads.chat import RequestClass
from repro.workloads.llm import LLAMA2_7B

REPLICAS = 4
SLO_TARGET = SLO(ttft_s=1.0, tpot_s=0.35)

#: Interactive-heavy chat mix (short follow-ups dominating, a document tail).
MIX = (RequestClass(input_tokens=64, output_tokens=32, weight=0.50),
       RequestClass(input_tokens=256, output_tokens=64, weight=0.35),
       RequestClass(input_tokens=1024, output_tokens=128, weight=0.15))


def main() -> None:
    trace = generate_trace("bursty", MIX, rate=8.0, num_requests=1000, seed=7)
    shared = CachingInferenceSimulator(design_a())

    rows = []
    for router in sorted(ROUTER_REGISTRY):
        replicas = [ServingSimulator(LLAMA2_7B, design_a(), simulator=shared)
                    for _ in range(REPLICAS)]
        report = ClusterSimulator(replicas, router=router).run(trace, slo=SLO_TARGET)
        rows.append([router,
                     f"{report.ttft.p99_s * 1e3:.0f} ms",
                     f"{report.slo_attainment * 100:.1f}%",
                     f"{report.goodput_requests_per_second:.2f} req/s",
                     f"{report.mean_active_replicas:.2f}",
                     f"${report.cost_per_million_tokens_dollars:.3f}"])
    print(format_table(
        ["router", "p99 TTFT", "SLO attained", "goodput", "mean active", "$/Mtok"],
        rows,
        title=f"{LLAMA2_7B.name} chat mix on {REPLICAS}x design-a "
              "(bursty arrivals, seed 7)"))

    plan = plan_fleet(LLAMA2_7B, design_a(), arrival_rate=8.0, slo=SLO_TARGET,
                      request_classes=MIX, attainment_target=0.9,
                      max_replicas=12, num_requests=400, seed=7)
    if plan.met:
        print(f"\nfleet plan: {plan.replicas} replica(s) meet the SLO at "
              f"8 req/s (tried {len(plan.evaluations)} fleet sizes)")
    else:
        print("\nfleet plan: target not met within 12 replicas")


if __name__ == "__main__":
    main()
