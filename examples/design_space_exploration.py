#!/usr/bin/env python
"""Explore CIM-MXU design choices (the paper's Table IV / Fig. 7 study).

Sweeps CIM-MXU count × CIM-core grid dimension over GPT-3-30B and DiT-XL/2
inference, prints latency and MXU energy relative to the TPUv4i baseline, and
reports which design the trade-off rule selects for each workload (the paper's
Design A and Design B).

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import ArchitectureExplorer, DiTInferenceSettings, LLMInferenceSettings, SweepEngine
from repro.analysis.report import format_table


def main() -> None:
    # The explorer is a thin client of the sweep engine; sharing an engine
    # across explorations (or passing workers=N) reuses its simulation caches.
    engine = SweepEngine()
    explorer = ArchitectureExplorer(
        llm_settings=LLMInferenceSettings(batch=8, input_tokens=1024, output_tokens=512,
                                          decode_kv_samples=4),
        dit_settings=DiTInferenceSettings(batch=8, image_resolution=512, sampling_steps=50),
        engine=engine)
    rows = explorer.explore()

    for workload in ("llm", "dit"):
        table_rows = []
        for row in rows:
            if row.workload != workload:
                continue
            table_rows.append([
                row.design,
                f"{row.peak_tops:.0f}",
                f"{row.latency_seconds * 1e3:.1f} ms",
                f"{row.latency_change_percent:+.1f}%",
                f"{row.energy_saving_vs_baseline:.1f}x",
            ])
        print(format_table(
            ["design", "peak TOPS", "latency", "latency vs baseline", "MXU energy saving"],
            table_rows,
            title=f"Design-space exploration — {workload.upper()}"))
        print()

    best_llm = explorer.best_design(rows, "llm", max_latency_increase=0.25)
    best_dit = explorer.best_design(rows, "dit", max_latency_increase=0.25)
    print(f"Selected LLM design (paper: Design A, 4 x 8x8):  {best_llm.design} "
          f"({best_llm.latency_change_percent:+.1f}% latency, "
          f"{best_llm.energy_saving_vs_baseline:.1f}x energy saving)")
    print(f"Selected DiT design (paper: Design B, 8 x 16x8): {best_dit.design} "
          f"({best_dit.latency_change_percent:+.1f}% latency, "
          f"{best_dit.energy_saving_vs_baseline:.1f}x energy saving)")
    stats = engine.stats
    print(f"(sweep engine: {stats.simulations} graph simulations, "
          f"{stats.graph_hits} graph-cache hits)")


if __name__ == "__main__":
    main()
