#!/usr/bin/env python
"""Diffusion Transformer (DiT-XL/2) inference analysis on CIM-based TPUs.

Simulates DiT-XL/2 image generation at several resolutions on the baseline
TPUv4i, the default CIM TPU and Design B, showing where the time goes inside a
DiT block (the paper's observation that Softmax and GEMM dominate) and how the
CIM designs trade latency against MXU energy.

Run with::

    python examples/dit_inference.py [resolution ...]

where each resolution is a square image size (default: 256 512).
"""

from __future__ import annotations

import sys

from repro import (
    DIT_XL_2,
    DiTInferenceSettings,
    InferenceSimulator,
    cim_tpu_default,
    design_b,
    tpuv4i_baseline,
)
from repro.analysis.breakdown import latency_breakdown
from repro.analysis.report import format_table


def main() -> None:
    resolutions = [int(arg) for arg in sys.argv[1:]] or [256, 512]
    designs = {
        "TPUv4i baseline": tpuv4i_baseline(),
        "CIM TPU (4 x 16x8)": cim_tpu_default(),
        "Design B (8 x 16x8)": design_b(),
    }

    rows = []
    for resolution in resolutions:
        settings = DiTInferenceSettings(batch=8, image_resolution=resolution, sampling_steps=50)
        baseline_result = None
        for label, config in designs.items():
            simulator = InferenceSimulator(config)
            inference = simulator.simulate_dit_inference(DIT_XL_2, settings)
            if baseline_result is None:
                baseline_result = inference
            rows.append([
                f"{resolution}x{resolution}",
                label,
                f"{inference.total_seconds:.2f} s",
                f"{inference.throughput:.3f} images/s",
                f"{baseline_result.total_seconds / inference.total_seconds:.2f}x",
                f"{baseline_result.mxu_energy / inference.mxu_energy:.1f}x",
            ])

    print(format_table(
        ["resolution", "design", "sampling latency", "throughput", "speedup", "MXU energy saving"],
        rows,
        title="DiT-XL/2 sampling (batch 8, 50 diffusion steps)"))

    print()
    settings = DiTInferenceSettings(batch=8, image_resolution=512)
    block = InferenceSimulator(tpuv4i_baseline()).simulate_dit_block(DIT_XL_2, settings)
    breakdown_rows = [[row.label, f"{row.value * 1e3:.3f} ms", f"{row.fraction * 100:.1f}%"]
                      for row in latency_breakdown(block)]
    print(format_table(
        ["layer category", "latency", "share"],
        breakdown_rows,
        title="Inside one DiT block on the baseline TPU (512x512)"))


if __name__ == "__main__":
    main()
